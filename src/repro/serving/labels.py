"""2-hop hub labels over the broker-dominated subgraph.

The serving tier answers "is ``(src, dst)`` B-dominated-connected within
``l`` hops, and via which path?" without running a BFS per query.  The
index is a *pruned landmark labeling* (Akiba–Iwata–Yoshida style) of the
dominated subgraph ``B ⊙ A`` — the graph whose edges are exactly the
alive edges with an effective broker endpoint, i.e. the edges a broker
can stitch a path over:

* roots are processed in **degree order** (dominated-subgraph degree,
  descending, vertex id as tie-break), so the hubs that cover the most
  pairs are labeled first;
* each root runs a **bitset-backed pruned BFS**: the frontier is a
  python-int vertex mask expanded through the per-vertex neighbor masks
  of :func:`repro.graph.bitset.adjacency_masks` (the single-source twin
  of the batched expansion in ``bitset_hop_reach``), and a vertex whose
  current labels already answer the root distance is pruned — neither
  labeled nor expanded;
* a query merges the two sorted hub arrays: ``dist(s, t) = min over
  common hubs h of d(s, h) + d(h, t)`` — exact, a few microseconds,
  no graph traversal.

Paths are unfolded on demand by walking distance-decreasing neighbors
toward the best hub (labels stay parent-free, which keeps the repair
layer honest — see :mod:`repro.serving.repair`).  Every vertex on a
dominated-subgraph path is dominated by construction: each edge has an
effective broker endpoint, so both endpoints are covered.

:meth:`HubLabelIndex.verify` mirrors :meth:`DominationEngine.verify`:
it recomputes every pairwise distance from scratch (one BFS per vertex)
and raises if any label-derived answer diverges — the property suite
calls it after every incremental repair.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import AlgorithmError
from repro.graph.bitset import adjacency_masks, indices_from_mask
from repro.obs import metrics as _metrics

__all__ = ["HubLabelIndex", "QueryAnswer", "UNREACHED"]

#: Sentinel hop distance for unreachable pairs (mirrors ``csr.UNREACHABLE``
#: but stays JSON-safe in service responses).
UNREACHED = -1

_EMPTY_I64 = np.empty(0, dtype=np.int64)


@dataclass(frozen=True)
class QueryAnswer:
    """One resolved path query.

    ``distance`` is the exact dominated-subgraph hop distance, or
    ``None`` when the pair is not B-dominated-connected at all;
    ``reachable`` additionally folds in the hop bound when one was
    given.  ``path`` is only populated when the caller asked for it and
    the pair is reachable within the bound.
    """

    src: int
    dst: int
    reachable: bool
    distance: int | None
    path: list[int] | None = None

    def as_dict(self) -> dict:
        return {
            "src": self.src,
            "dst": self.dst,
            "reachable": self.reachable,
            "distance": UNREACHED if self.distance is None else self.distance,
            "path": self.path,
        }


def _snapshot(engine) -> tuple[int, np.ndarray, set[tuple[int, int]]]:
    """``(n, alive, dominated edge set)`` of the engine's current state."""
    n = engine.num_nodes
    alive = engine.alive_view.copy()
    src, dst = engine.dominated_alive_edges()
    edges = {
        (int(u), int(v)) if u < v else (int(v), int(u))
        for u, v in zip(src.tolist(), dst.tolist())
    }
    return n, alive, edges


class HubLabelIndex:
    """Mutable 2-hop hub-label index over one engine's dominated graph.

    Build with :meth:`build`; query with :meth:`distance` /
    :meth:`query`; let :class:`repro.serving.repair.LabelRepairer` keep
    it synchronized with engine mutations.  All mutation entry points
    (`_insert_edge`, `_rebuild_scope`) live here but are driven by the
    repairer — the index itself never watches the engine.
    """

    def __init__(
        self,
        n: int,
        alive: np.ndarray,
        adj: list[int],
        rank: np.ndarray,
    ) -> None:
        self.n = n
        self.alive = alive
        #: Per-vertex neighbor masks of the dominated subgraph.
        self.adj = adj
        #: Root-order position per vertex (lower = earlier landmark).
        self.rank = rank
        #: Per-vertex label entries as ``{hub: dist}`` — the mutable
        #: truth the repairer patches.
        self.hub_dists: list[dict[int, int]] = [dict() for _ in range(n)]
        # Frozen sorted-array form per vertex, rebuilt lazily per query.
        self._hubs: list[np.ndarray | None] = [None] * n
        self._dists: list[np.ndarray | None] = [None] * n

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(cls, engine) -> "HubLabelIndex":
        """Canonical pruned-landmark labeling of ``engine``'s dominated
        subgraph (degree-ordered roots, earlier-label pruning)."""
        n, alive, edges = _snapshot(engine)
        if edges:
            src, dst = map(np.asarray, zip(*sorted(edges)))
        else:
            src = dst = _EMPTY_I64
        adj = adjacency_masks(src, dst, max(n, 1))[:n] if n else []
        # Dead vertices keep the out-of-band rank ``n``.
        index = cls(n, alive, adj, np.full(n, n, dtype=np.int64))
        roots = index._degree_order(range(n))
        index.rank[roots] = np.arange(len(roots), dtype=np.int64)
        for r in roots:
            index._pruned_bfs(int(r))
        _metrics.add_counter("serving.index.builds")
        _metrics.add_counter("serving.index.label_entries",
                             index.label_entries())
        return index

    def _degree_order(self, candidates) -> np.ndarray:
        """Alive ``candidates`` sorted by dominated degree desc, id asc."""
        cand = np.asarray(
            [v for v in candidates if self.alive[v]], dtype=np.int64
        )
        if not len(cand):
            return cand
        degrees = np.asarray(
            [self.adj[v].bit_count() for v in cand.tolist()], dtype=np.int64
        )
        return cand[np.lexsort((cand, -degrees))]

    def _pruned_bfs(self, root: int, start: int | None = None,
                    start_dist: int = 0) -> None:
        """One pruned BFS sweep rooted at ``root``.

        ``start`` resumes the sweep from a different vertex at
        ``start_dist`` (the incremental edge-insertion patch); the
        default labels from the root itself.  Visited vertices whose
        existing labels already answer the root distance are pruned:
        they get no entry and contribute nothing to the next frontier.
        """
        root_label = self.hub_dists[root]
        origin = root if start is None else start
        frontier = 1 << origin
        visited = frontier
        d = start_dist
        while frontier:
            kept = 0
            for v in indices_from_mask(frontier, self.n).tolist():
                if self._covered_upto(root_label, v, d):
                    continue
                entries = self.hub_dists[v]
                if root not in entries or entries[root] > d:
                    entries[root] = d
                    self._hubs[v] = None
                kept |= 1 << v
            if not kept:
                break
            nxt = 0
            for v in indices_from_mask(kept, self.n).tolist():
                nxt |= self.adj[v]
            frontier = nxt & ~visited
            visited |= frontier
            d += 1

    def _covered_upto(self, root_label: dict[int, int], v: int,
                      d: int) -> bool:
        """True if current labels already give ``dist(root, v) <= d``."""
        entries = self.hub_dists[v]
        if len(entries) > len(root_label):
            small, large = root_label, entries
        else:
            small, large = entries, root_label
        for h, dh in small.items():
            dv = large.get(h)
            if dv is not None and dh + dv <= d:
                return True
        return False

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def _frozen(self, v: int) -> tuple[np.ndarray, np.ndarray]:
        hubs = self._hubs[v]
        if hubs is None:
            entries = self.hub_dists[v]
            hubs = np.fromiter(entries.keys(), dtype=np.int64,
                               count=len(entries))
            dists = np.fromiter(entries.values(), dtype=np.int64,
                                count=len(entries))
            order = np.argsort(hubs)
            hubs = hubs[order]
            dists = dists[order]
            self._hubs[v] = hubs
            self._dists[v] = dists
        return hubs, self._dists[v]

    def distance(self, src: int, dst: int) -> int | None:
        """Exact dominated-subgraph hop distance, ``None`` if unreachable.

        Dead vertices are not in the subgraph, so any query touching one
        is unreachable — including ``src == dst``.  The merge iterates
        the smaller label dict and probes the larger — sub-microsecond
        at realistic label sizes (p50 ~8 entries on the ``small``
        profile), an order of magnitude under the numpy set-intersection
        it replaced, because no arrays are materialized per query.
        """
        self._check_vertex(src)
        self._check_vertex(dst)
        if not (self.alive[src] and self.alive[dst]):
            return None
        if src == dst:
            return 0
        e1 = self.hub_dists[src]
        e2 = self.hub_dists[dst]
        if len(e1) > len(e2):
            e1, e2 = e2, e1
        best = None
        for h, d in e1.items():
            other = e2.get(h)
            if other is not None and (best is None or d + other < best):
                best = d + other
        return best

    def best_hub(self, src: int, dst: int) -> tuple[int, int] | None:
        """``(hub, distance)`` minimizing the 2-hop sum (smallest-id tie)."""
        if not (self.alive[src] and self.alive[dst]):
            return None
        if src == dst:
            return src, 0
        e1 = self.hub_dists[src]
        e2 = self.hub_dists[dst]
        if len(e1) > len(e2):
            e1, e2 = e2, e1
        best: tuple[int, int] | None = None
        for h, d in e1.items():
            other = e2.get(h)
            if other is None:
                continue
            total = d + other
            if best is None or total < best[1] or (
                total == best[1] and h < best[0]
            ):
                best = (h, total)
        return best

    def query(
        self,
        src: int,
        dst: int,
        max_hops: int | None = None,
        *,
        with_path: bool = False,
    ) -> QueryAnswer:
        """Resolve one path query against the current labels."""
        if max_hops is not None and max_hops < 0:
            raise AlgorithmError(f"max_hops must be >= 0, got {max_hops}")
        dist = self.distance(src, dst)
        reachable = dist is not None and (max_hops is None or dist <= max_hops)
        path = self.path(src, dst) if with_path and reachable else None
        return QueryAnswer(src, dst, reachable, dist, path)

    def path(self, src: int, dst: int) -> list[int] | None:
        """A shortest dominated path, unfolded from the labels.

        Deterministic: walks distance-decreasing neighbors toward the
        best hub, taking the smallest-id neighbor at every step.  Every
        vertex on the returned path is alive and dominated (each edge of
        the dominated subgraph has an effective broker endpoint, so both
        of its endpoints are covered).
        """
        resolved = self.best_hub(src, dst)
        if resolved is None:
            return None
        hub, _ = resolved
        first = self._walk_to_hub(src, hub)
        second = self._walk_to_hub(dst, hub)
        return first + second[::-1][1:]

    def _walk_to_hub(self, v: int, hub: int) -> list[int]:
        walk = [v]
        dist = self.distance(v, hub)
        while v != hub:
            for u in indices_from_mask(self.adj[v], self.n).tolist():
                if self.distance(u, hub) == dist - 1:
                    walk.append(u)
                    v, dist = u, dist - 1
                    break
            else:  # pragma: no cover - defends label exactness
                raise AlgorithmError(
                    f"path unfolding stuck at {v} toward hub {hub}"
                )
        return walk

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def label_entries(self) -> int:
        """Total number of ``(hub, dist)`` entries across all vertices."""
        return sum(len(entries) for entries in self.hub_dists)

    def labels_of(self, v: int) -> tuple[np.ndarray, np.ndarray]:
        """Sorted ``(hubs, dists)`` arrays of one vertex (do not mutate)."""
        self._check_vertex(v)
        return self._frozen(v)

    def _check_vertex(self, v: int) -> None:
        if not isinstance(v, (int, np.integer)) or not 0 <= v < self.n:
            raise AlgorithmError(
                f"vertex {v!r} out of range for universe of {self.n}"
            )

    def bfs_distances(self, src: int) -> np.ndarray:
        """From-scratch BFS distances over the dominated subgraph —
        the per-query oracle the labels are pinned against."""
        dist = np.full(self.n, UNREACHED, dtype=np.int64)
        if not 0 <= src < self.n or not self.alive[src]:
            return dist
        dist[src] = 0
        frontier = 1 << src
        visited = frontier
        d = 0
        while frontier:
            nxt = 0
            for v in indices_from_mask(frontier, self.n).tolist():
                nxt |= self.adj[v]
            frontier = nxt & ~visited
            visited |= frontier
            d += 1
            for v in indices_from_mask(frontier, self.n).tolist():
                dist[v] = d
        return dist

    def verify(self) -> bool:
        """Recompute every distance from scratch; raise on any drift.

        Mirrors :meth:`DominationEngine.verify`: one BFS per vertex is
        the oracle, and every label-derived answer must match it —
        including unreachability and dead-vertex emptiness.  O(n * m),
        a debugging/testing facility exactly like the engine's.
        """
        for v in range(self.n):
            if not self.alive[v] and self.hub_dists[v]:
                raise AlgorithmError(f"dead vertex {v} carries labels")
            hubs, dists = self._frozen(v)
            if len(hubs) and not np.all(np.diff(hubs) > 0):
                raise AlgorithmError(f"label hubs of {v} not sorted unique")
            if np.any(dists < 0):
                raise AlgorithmError(f"negative label distance at {v}")
        for s in range(self.n):
            truth = self.bfs_distances(s)
            for t in range(self.n):
                expected = int(truth[t])
                got = self.distance(s, t)
                got = UNREACHED if got is None else got
                if got != expected:
                    raise AlgorithmError(
                        f"label distance({s}, {t}) = {got} diverged from "
                        f"BFS recomputation {expected}"
                    )
        return True

    # ------------------------------------------------------------------
    # Serialization (the result-cache payload)
    # ------------------------------------------------------------------

    def to_payload(self) -> dict:
        """JSON-safe dump: labels, rank, aliveness and edge list."""
        edges = sorted(
            (u, v)
            for v in range(self.n)
            for u in indices_from_mask(self.adj[v], self.n).tolist()
            if u < v
        )
        return {
            "n": self.n,
            "dead": [int(v) for v in np.flatnonzero(~self.alive)],
            "rank": self.rank.tolist(),
            "edges": [[u, v] for u, v in edges],
            "labels": [
                sorted([int(h), int(d)] for h, d in self.hub_dists[v].items())
                for v in range(self.n)
            ],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "HubLabelIndex":
        n = int(payload["n"])
        alive = np.ones(n, dtype=bool)
        dead = np.asarray(payload["dead"], dtype=np.int64)
        if len(dead):
            alive[dead] = False
        edges = payload["edges"]
        if edges:
            src, dst = map(np.asarray, zip(*edges))
        else:
            src = dst = _EMPTY_I64
        adj = adjacency_masks(src, dst, max(n, 1))[:n] if n else []
        index = cls(
            n, alive, adj, np.asarray(payload["rank"], dtype=np.int64)
        )
        for v, entries in enumerate(payload["labels"]):
            index.hub_dists[v] = {int(h): int(d) for h, d in entries}
        return index
