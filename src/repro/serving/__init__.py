"""Broker path-query serving tier.

The offline layers of this repo decide *which* brokers to deploy; this
package answers the online question those brokers exist for: *is this
(src, dst) pair broker-connected within ``l`` hops, and via which
path?* — at query-serving latency, under churn:

* :mod:`repro.serving.labels` — the 2-hop hub-label index (pruned
  landmark labeling over the dominated subgraph; microsecond
  sorted-hub-merge queries);
* :mod:`repro.serving.repair` — incremental label repair driven by
  :meth:`DominationEngine.subscribe` mutation deltas;
* :mod:`repro.serving.service` — asyncio request batching, structured
  errors, latency histograms, JSON-lines TCP endpoint;
* :mod:`repro.serving.loadgen` — seeded closed-loop load generation
  with a digest-pinned answer stream.

:func:`build_index` is the cached entry point: index payloads are
content-addressed in the sweep :class:`ResultCache` by the engine
state's digest and the registry fingerprint, so re-serving an unchanged
deployment skips construction entirely.
"""

from __future__ import annotations

import hashlib
import json

from repro.core.registry import get_index, registry_fingerprint
from repro.serving.labels import UNREACHED, HubLabelIndex, QueryAnswer
from repro.serving.loadgen import LoadgenReport, generate_queries, run_loadgen
from repro.serving.repair import LabelRepairer
from repro.serving.service import (
    ADMIN_VERBS,
    PathQueryService,
    QueryRequest,
    QueryResponse,
    admin_response,
    serve_tcp,
)

__all__ = [
    "ADMIN_VERBS",
    "HubLabelIndex",
    "LabelRepairer",
    "LoadgenReport",
    "PathQueryService",
    "QueryAnswer",
    "QueryRequest",
    "QueryResponse",
    "UNREACHED",
    "admin_response",
    "build_index",
    "engine_state_digest",
    "generate_queries",
    "run_loadgen",
    "serve_tcp",
]


def engine_state_digest(engine) -> str:
    """Digest of exactly the engine state the index depends on.

    The labeling is a pure function of the dominated subgraph —
    universe size, aliveness, and the dominated alive edge set — so two
    engines that agree on those (whatever their broker/mutation history)
    share one cache entry.
    """
    from repro.serving.labels import _snapshot

    n, alive, edges = _snapshot(engine)
    material = json.dumps(
        {
            "n": n,
            "dead": [int(v) for v in range(n) if not alive[v]],
            "edges": sorted(map(list, edges)),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(material.encode()).hexdigest()


def build_index(
    engine, *, family: str = "hub2", cache=None
) -> HubLabelIndex:
    """Build (or cache-load) a serving index over ``engine``.

    ``family`` resolves through the central registry
    (:func:`repro.core.registry.get_index`).  With a
    :class:`repro.parallel.cache.ResultCache`, the serialized index is
    content-addressed by the engine state digest, the family's declared
    parameters, and the registry fingerprint — so payloads invalidate
    when the roster or the build policy changes, exactly like cached
    experiment results.
    """
    spec = get_index(family)
    if cache is None:
        return spec.builder(engine)
    params = {
        "policy": {p.name: p.default for p in spec.params},
        "registry": registry_fingerprint(),
    }
    payload = cache.get_or_compute(
        lambda: spec.builder(engine).to_payload(),
        graph_digest=engine_state_digest(engine),
        algorithm=f"serving-index-{family}",
        params=params,
    )
    return HubLabelIndex.from_payload(payload)
