"""A policy-aware BGP route computation (the "cooperating with BGP" substrate).

The economic model of Section 7 studies ASes splitting traffic between the
brokerage scheme and ordinary BGP.  To make that comparison concrete the
library includes a path-vector route computation implementing the
Gao-Rexford preferences:

1. routes learned from customers are preferred over peer routes, which are
   preferred over provider routes;
2. among equals, shorter AS paths win;
3. export rules: customer routes are exported to everyone; peer/provider
   routes are exported only to customers.

Routes to one destination for *all* sources are computed with the classic
three-phase BFS (customer cone upward, one peer hop, provider cone
downward), which is exactly the fixed point of the path-vector protocol
under those preferences — no iterative convergence needed.

IXP membership links are treated as peering.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.exceptions import AlgorithmError
from repro.graph.asgraph import ASGraph
from repro.types import Relationship


class RouteType(enum.IntEnum):
    """How the best route to the destination was learned."""

    NONE = 0       # unreachable under policy
    SELF = 1       # the destination itself
    CUSTOMER = 2   # via a customer edge (destination in the customer cone)
    PEER = 3       # via a peer edge
    PROVIDER = 4   # via a provider edge


@dataclass(frozen=True)
class RouteInfo:
    """Routes from every source towards one destination."""

    destination: int
    route_type: np.ndarray   # RouteType per source
    path_length: np.ndarray  # AS-path hop count per source (-1 unreachable)
    next_hop: np.ndarray     # next hop on the best path (-1 if none/self)

    def reachable_fraction(self) -> float:
        """Fraction of other vertices with a policy-compliant route."""
        n = len(self.route_type)
        if n <= 1:
            return 0.0
        return float(
            np.count_nonzero(self.route_type != int(RouteType.NONE)) - 1
        ) / (n - 1)

    def path_to(self, source: int) -> list[int] | None:
        """Reconstruct the AS path ``source -> destination``."""
        if self.route_type[source] == int(RouteType.NONE):
            return None
        path = [int(source)]
        while path[-1] != self.destination:
            nxt = int(self.next_hop[path[-1]])
            if nxt < 0 or len(path) > len(self.route_type):
                raise AlgorithmError("corrupt next-hop chain")
            path.append(nxt)
        return path


def export_allowed(learned_from: int, *, to_customer: bool) -> bool:
    """The Gao-Rexford export rule as one predicate.

    An AS announces a route to a neighbor iff the route is its own or
    was learned from a customer (valley-free "customer routes go
    everywhere"), or the neighbor is one of its customers (everything is
    exported downhill).  ``learned_from`` is the :class:`RouteType`
    through which the exporting AS holds the route.  The message-level
    convergence simulator shares this predicate with the fixed-point
    computation in :meth:`BGPSimulator.route_to` so both agree on which
    announcements may propagate.
    """
    if learned_from in (int(RouteType.SELF), int(RouteType.CUSTOMER)):
        return True
    return to_customer


def preference_key(learned_from: int, path_length: int, neighbor: int) -> tuple:
    """Total preference order over candidate routes — smaller wins.

    ``(route class, AS-path length, neighbor id)``: customer < peer <
    provider (the :class:`RouteType` values are already in that order),
    then shortest path, then lowest neighbor id as the deterministic
    final tie-break (the stand-in for lowest router id in real BGP).
    """
    return (int(learned_from), int(path_length), int(neighbor))


class BGPSimulator:
    """Computes Gao-Rexford routes on an :class:`ASGraph`.

    The per-destination computation is O(|V| + |E|); adjacency lists with
    hop types are prebuilt once per simulator instance.
    """

    def __init__(self, graph: ASGraph) -> None:
        self._graph = graph
        n = graph.num_nodes
        # Outgoing hop lists: providers[u] = ASes u buys transit from, etc.
        self._providers: list[list[int]] = [[] for _ in range(n)]
        self._customers: list[list[int]] = [[] for _ in range(n)]
        self._peers: list[list[int]] = [[] for _ in range(n)]
        for u, v, r in zip(graph.edge_src, graph.edge_dst, graph.edge_rels):
            u, v, r = int(u), int(v), int(r)
            if r == int(Relationship.CUSTOMER_TO_PROVIDER):
                self._providers[u].append(v)
                self._customers[v].append(u)
            else:
                self._peers[u].append(v)
                self._peers[v].append(u)

    @property
    def graph(self) -> ASGraph:
        return self._graph

    def neighbor_tables(
        self,
    ) -> tuple[list[list[int]], list[list[int]], list[list[int]]]:
        """``(providers, customers, peers)`` adjacency lists per vertex.

        The prebuilt relationship-typed neighbor structure, exposed for
        message-level simulators that drive the same policy graph one
        UPDATE at a time.  Callers must treat the lists as read-only.
        """
        return self._providers, self._customers, self._peers

    def route_to(self, destination: int) -> RouteInfo:
        """Best policy-compliant route from every vertex to ``destination``.

        Phase 1 — *customer routes*: propagate from the destination along
        customer→provider edges (a provider hears its customer's prefix).
        Phase 2 — *peer routes*: one peer hop off any phase-1 vertex.
        Phase 3 — *provider routes*: propagate downward from phase-1/2
        vertices along provider→customer edges.
        """
        n = self._graph.num_nodes
        if not 0 <= destination < n:
            raise AlgorithmError(f"destination {destination} out of range")
        route_type = np.zeros(n, dtype=np.int8)
        path_length = np.full(n, -1, dtype=np.int64)
        next_hop = np.full(n, -1, dtype=np.int64)
        route_type[destination] = int(RouteType.SELF)
        path_length[destination] = 0

        # Phase 1: BFS up the provider DAG.
        frontier = [destination]
        while frontier:
            nxt: list[int] = []
            for u in frontier:
                for p in self._providers[u]:
                    if route_type[p] == int(RouteType.NONE):
                        route_type[p] = int(RouteType.CUSTOMER)
                        path_length[p] = path_length[u] + 1
                        next_hop[p] = u
                        nxt.append(p)
            frontier = nxt

        # Phase 2: one peer hop.  Customer routes are exported to peers;
        # shorter learned paths win among equals, so scan ascending length.
        phase1 = np.flatnonzero(
            (route_type == int(RouteType.CUSTOMER))
            | (route_type == int(RouteType.SELF))
        )
        for u in phase1[np.argsort(path_length[phase1], kind="stable")]:
            for w in self._peers[int(u)]:
                if route_type[w] == int(RouteType.NONE):
                    route_type[w] = int(RouteType.PEER)
                    path_length[w] = path_length[u] + 1
                    next_hop[w] = u

        # Phase 3: BFS down the customer cones of everyone with a route.
        # Peer/provider routes are exported to customers only; customer
        # routes are exported to customers too.
        order = np.flatnonzero(route_type != int(RouteType.NONE))
        import heapq

        heap = [(int(path_length[u]), int(u)) for u in order]
        heapq.heapify(heap)
        while heap:
            dist, u = heapq.heappop(heap)
            if dist > path_length[u]:
                continue  # stale entry
            for c in self._customers[u]:
                if route_type[c] == int(RouteType.NONE):
                    route_type[c] = int(RouteType.PROVIDER)
                    path_length[c] = dist + 1
                    next_hop[c] = u
                    heapq.heappush(heap, (dist + 1, c))
        return RouteInfo(
            destination=destination,
            route_type=route_type,
            path_length=path_length,
            next_hop=next_hop,
        )

    def reachability_fraction(
        self, *, num_destinations: int = 32, seed: int = 0
    ) -> float:
        """Mean policy reachability over sampled destinations."""
        rng = np.random.default_rng(seed)
        n = self._graph.num_nodes
        dests = rng.choice(n, size=min(num_destinations, n), replace=False)
        fracs = [self.route_to(int(d)).reachable_fraction() for d in dests]
        return float(np.mean(fracs))
