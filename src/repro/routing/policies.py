"""Business-relationship routing policies (Section 6.2, Figs. 5b/5c).

The selection algorithms assume every link of a B-dominated path is usable
in both directions and in any position.  Section 6.2 asks what survives
when ASes obey their existing business relationships.  We model that with
the standard Gao-Rexford *valley-free* semantics:

* a policy-compliant path climbs customer→provider links, crosses **at
  most one** peer (or IXP) link, then descends provider→customer links;
* under the BUSINESS policy the brokered connectivity counts only pairs
  joined by a path that is both **B-dominated and valley-free** — broker
  chains hopping across several peering links (the norm for hub-heavy
  broker sets) become invalid, which is Fig. 5c's sharp collapse;
* Fig. 5b's repair converts a random fraction of the *inter-broker* links
  into **coalition edges**: the coalition renegotiates internal contracts
  (e.g., to settlement-free peering with mutual transit), making those
  links usable in any direction and any path position without affecting
  the valley-free state.

Reachability under these semantics is a BFS on a 3-state product graph
(UP, after-peer, DOWN), vectorized as one sparse-matrix product per hop
type and level, so policy evaluation scales like the rest of the engine.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro.core.connectivity import ConnectivityCurve
from repro.core.domination import broker_mask
from repro.exceptions import AlgorithmError
from repro.graph.asgraph import ASGraph
from repro.types import Relationship
from repro.utils.rng import SeedLike, ensure_rng


class DirectionalPolicy(enum.Enum):
    """How business relationships restrict brokered paths."""

    #: Every dominated edge usable freely (the selection-time assumption).
    FREE = "free"
    #: Classic Gao-Rexford valley-free constraint: up*, <=1 peer, down*.
    BUSINESS = "business"
    #: Strict reading of peering contracts: a peer/IXP link delivers only
    #: to the peer itself (no transit through it), so it can only be the
    #: *last* hop of a path.
    STRICT_BUSINESS = "strict-business"
    #: The paper's Fig. 5c regime ("the previously assumed bidirectional
    #: routing policy becomes directional").  First and last hops are free
    #: — the endpoints pay the coalition directly ("B can charge from both
    #: the customer AS and the destination", Fig. 6) and first-hop SLAs are
    #: the one thing plain BGP already provides.  *Interior* hops must be
    #: compensated by existing contracts: only customer→provider traversal
    #: (the customer already pays for transit) or renegotiated coalition
    #: edges are usable.  Peering gives no third-party transit.  This
    #: collapses connectivity sharply and recovers strongly when a
    #: fraction of inter-broker links is renegotiated (Fig. 5b).
    DIRECTIONAL = "directional"


@dataclass(frozen=True)
class PolicyMatrices:
    """Hop-type adjacency matrices restricted to dominated edges.

    ``up[u, v] = 1`` means ``u -> v`` is a customer→provider hop, ``down``
    its reverse, ``peer`` a (symmetric) peering/IXP hop, and ``coalition``
    a (symmetric) renegotiated inter-broker hop usable in any state.
    """

    up: sparse.csr_matrix
    down: sparse.csr_matrix
    peer: sparse.csr_matrix
    coalition: sparse.csr_matrix


def inter_broker_edge_mask(graph: ASGraph, brokers: list[int]) -> np.ndarray:
    """Undirected edges whose *both* endpoints are brokers."""
    mask = broker_mask(graph, brokers)
    return mask[graph.edge_src] & mask[graph.edge_dst]


def build_policy_matrices(
    graph: ASGraph,
    brokers: list[int] | None,
    *,
    coalition_edge_mask: np.ndarray | None = None,
) -> PolicyMatrices:
    """Split the (dominated) edge set by hop type.

    ``brokers=None`` keeps every edge (policy-compliant free routing);
    otherwise only edges with >= 1 broker endpoint survive, so paths in
    the product graph are B-dominated by construction.
    """
    n = graph.num_nodes
    src, dst, rels = graph.edge_src, graph.edge_dst, graph.edge_rels
    keep = np.ones(graph.num_edges, dtype=bool)
    if brokers is not None:
        mask = broker_mask(graph, brokers)
        keep = mask[src] | mask[dst]
    coal = (
        np.zeros(graph.num_edges, dtype=bool)
        if coalition_edge_mask is None
        else coalition_edge_mask.astype(bool)
    )
    c2p = (rels == int(Relationship.CUSTOMER_TO_PROVIDER)) & keep & ~coal
    pp = (rels != int(Relationship.CUSTOMER_TO_PROVIDER)) & keep & ~coal
    co = coal & keep

    def _mat(s: np.ndarray, d: np.ndarray) -> sparse.csr_matrix:
        data = np.ones(len(s), dtype=np.int8)
        m = sparse.coo_matrix((data, (s, d)), shape=(n, n)).tocsr()
        m.sum_duplicates()
        return m

    def _sym(mask_: np.ndarray) -> sparse.csr_matrix:
        return _mat(
            np.concatenate([src[mask_], dst[mask_]]),
            np.concatenate([dst[mask_], src[mask_]]),
        )

    return PolicyMatrices(
        up=_mat(src[c2p], dst[c2p]),  # customer stored first
        down=_mat(dst[c2p], src[c2p]),
        peer=_sym(pp),
        coalition=_sym(co),
    )


def _valley_free_reach_counts(
    mats: PolicyMatrices,
    sources: np.ndarray,
    max_hops: int,
    *,
    peer_transit: bool = True,
    batch_size: int = 128,
) -> np.ndarray:
    """Vertices reachable within ``1..max_hops`` policy-compliant hops.

    Product-graph BFS over states UP (still climbing), DOWN (crossed the
    peak) and TERM (absorbing).  Transitions per hop:

    * UP   --up-->        UP
    * UP   --peer-->      DOWN when ``peer_transit`` (classic valley-free:
      the single peer hop is the peak), else TERM (strict: a peer link
      only delivers to the peer itself, and only traffic still inside the
      sender's cone — i.e. from the UP state — may use it, making the
      strict regime a subset of classic valley-free)
    * any  --down-->      DOWN
    * UP/DOWN --coalition--> same state
    * TERM: no outgoing hops

    Returns shape ``(len(sources), max_hops)`` cumulative reach counts
    excluding the source itself.
    """
    n = mats.up.shape[0]
    up_t = mats.up.T.tocsr()
    down_t = mats.down.T.tocsr()
    peer_t = mats.peer.T.tocsr()
    coal_t = mats.coalition.T.tocsr()
    has_coal = coal_t.nnz > 0
    counts = np.zeros((len(sources), max_hops), dtype=np.int64)
    for start in range(0, len(sources), batch_size):
        batch = sources[start : start + batch_size]
        b = len(batch)
        vis_up = np.zeros((n, b), dtype=bool)
        vis_dn = np.zeros((n, b), dtype=bool)
        vis_tm = np.zeros((n, b), dtype=bool)
        vis_up[batch, np.arange(b)] = True
        f_up, f_dn = vis_up.copy(), np.zeros((n, b), dtype=bool)
        for hop in range(max_hops):
            if not (f_up.any() or f_dn.any()):
                counts[start : start + b, hop:] = counts[
                    start : start + b, hop - 1 : hop
                ]
                break
            fu = f_up.astype(np.float32)
            fd = f_dn.astype(np.float32)
            new_up = (up_t @ fu) > 0
            new_dn = (down_t @ (fu + fd)) > 0
            new_tm = np.zeros((n, b), dtype=bool)
            if peer_transit:
                new_dn |= (peer_t @ fu) > 0
            else:
                new_tm = (peer_t @ fu) > 0
            if has_coal:
                new_up |= (coal_t @ fu) > 0
                new_dn |= (coal_t @ fd) > 0
            f_up = new_up & ~vis_up
            f_dn = new_dn & ~vis_dn
            vis_tm |= new_tm
            vis_up |= f_up
            vis_dn |= f_dn
            counts[start : start + b, hop] = (
                (vis_up | vis_dn | vis_tm).sum(axis=0) - 1
            )
            # The source starts as visited in UP; its own column is always
            # true, hence the "- 1".
    return counts


def _brokered_directional_reach_counts(
    mats: PolicyMatrices,
    sources: np.ndarray,
    max_hops: int,
    *,
    batch_size: int = 128,
) -> np.ndarray:
    """Reach counts under the DIRECTIONAL (SLA-endpoint) policy.

    Position-aware BFS: hop 1 may use *any* dominated edge (the source's
    first-hop SLA); interior hops may only climb customer→provider links
    or cross coalition edges; the final hop may again use any dominated
    edge (the destination is billed by the coalition).  A vertex counts as
    reached within ``l`` hops when it is interior-occupiable within ``l``
    hops or adjacent to a vertex interior-occupiable within ``l − 1``.
    """
    n = mats.up.shape[0]
    int_t = (mats.up + mats.coalition).T.tocsr()
    any_mat = mats.up + mats.down + mats.peer + mats.coalition
    any_t = any_mat.T.tocsr()
    counts = np.zeros((len(sources), max_hops), dtype=np.int64)
    for start in range(0, len(sources), batch_size):
        batch = sources[start : start + batch_size]
        b = len(batch)
        vis_int = np.zeros((n, b), dtype=bool)
        vis_all = np.zeros((n, b), dtype=bool)
        vis_int[batch, np.arange(b)] = True
        vis_all |= vis_int
        f_int = vis_int.copy()
        for hop in range(max_hops):
            if not f_int.any():
                counts[start : start + b, hop:] = counts[
                    start : start + b, hop - 1 : hop
                ]
                break
            fi = f_int.astype(np.float32)
            reached_any = (any_t @ fi) > 0  # terminal (or first) hop
            if hop == 0:
                # The first hop grants interior occupancy anywhere the
                # source can hand traffic to under its own SLA.
                new_int = reached_any & ~vis_int
            else:
                new_int = ((int_t @ fi) > 0) & ~vis_int
            vis_all |= reached_any
            vis_int |= new_int
            counts[start : start + b, hop] = (vis_all | vis_int).sum(axis=0) - 1
            f_int = new_int
    return counts


def coalition_edges(
    graph: ASGraph,
    brokers: list[int],
    fraction: float,
    *,
    seed: SeedLike = 0,
) -> np.ndarray:
    """Randomly pick ``fraction`` of inter-broker edges for renegotiation.

    Returns a boolean mask over the undirected edge list (Fig. 5b's "30 %
    changes at its inter-broker connections").
    """
    if not 0.0 <= fraction <= 1.0:
        raise AlgorithmError(f"fraction must be in [0, 1], got {fraction}")
    inter = np.flatnonzero(inter_broker_edge_mask(graph, brokers))
    converted = np.zeros(graph.num_edges, dtype=bool)
    if len(inter) and fraction > 0.0:
        take = int(round(fraction * len(inter)))
        if take:
            rng = ensure_rng(seed)
            converted[rng.choice(inter, size=take, replace=False)] = True
    return converted


def policy_connectivity_curve(
    graph: ASGraph,
    brokers: list[int] | None,
    *,
    policy: DirectionalPolicy = DirectionalPolicy.BUSINESS,
    bidirectional_fraction: float = 0.0,
    max_hops: int = 10,
    num_sources: int | None = None,
    seed: SeedLike = 0,
) -> ConnectivityCurve:
    """l-hop E2E connectivity under a routing policy.

    ``policy=FREE`` reduces to the standard (undirected) evaluation.
    Under ``BUSINESS`` the curve counts pairs joined by a B-dominated
    valley-free path; ``bidirectional_fraction`` applies the Fig. 5b
    coalition-edge conversion first (requires ``brokers``).

    The reported ``saturated`` value of a BUSINESS curve is its value at
    ``max_hops`` — directed/policy reachability has no cheap component
    decomposition, and the curves flatten well before 10 hops on
    (0.99, 4)-graphs.
    """
    n = graph.num_nodes
    if n < 2:
        raise AlgorithmError("connectivity requires at least two vertices")
    if policy is DirectionalPolicy.FREE:
        from repro.core.connectivity import connectivity_curve

        return connectivity_curve(
            graph, brokers, max_hops=max_hops, num_sources=num_sources, seed=seed
        )
    coal_mask = None
    if bidirectional_fraction > 0.0:
        if brokers is None:
            raise AlgorithmError(
                "bidirectional_fraction requires an explicit broker set"
            )
        coal_mask = coalition_edges(
            graph, brokers, bidirectional_fraction, seed=seed
        )
    mats = build_policy_matrices(graph, brokers, coalition_edge_mask=coal_mask)
    if num_sources is None or num_sources >= n:
        sources = np.arange(n)
        exact = True
    else:
        rng = ensure_rng(seed)
        sources = rng.choice(n, size=num_sources, replace=False)
        exact = False
    if policy is DirectionalPolicy.DIRECTIONAL:
        counts = _brokered_directional_reach_counts(mats, sources, max_hops)
    else:
        counts = _valley_free_reach_counts(
            mats,
            sources,
            max_hops,
            peer_transit=(policy is DirectionalPolicy.BUSINESS),
        )
    fractions = counts.sum(axis=0) / (len(sources) * (n - 1))
    return ConnectivityCurve(
        fractions=fractions.astype(np.float64),
        saturated=float(fractions[-1]),
        max_hops=max_hops,
        num_sources=len(sources),
        exact=exact,
    )
