"""Valley-free (Gao-Rexford) path semantics.

A path is *valley-free* when it climbs customer→provider links, crosses at
most one peer link, then descends provider→customer links — the export
rules rational ASes follow.  The BGP simulator builds on these semantics,
and the tests use them to sanity-check the synthetic topology's
relationship assignment (every stub must have a valley-free route to
every tier-1, etc.).

The reachability search runs on a 3-state product graph (UP / PEAK /
DOWN): O(3(|V| + |E|)) per source.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import AlgorithmError
from repro.graph.asgraph import ASGraph
from repro.types import Relationship

# Product-graph states.
_UP, _PEAK, _DOWN = 0, 1, 2


def _edge_relationship_lookup(graph: ASGraph) -> dict[tuple[int, int], int]:
    """Map ordered pair -> hop type: +1 uphill (c2p), -1 downhill, 0 peer.

    IXP membership edges are treated as peering (settlement-free).
    """
    lookup: dict[tuple[int, int], int] = {}
    for u, v, r in zip(graph.edge_src, graph.edge_dst, graph.edge_rels):
        u, v, r = int(u), int(v), int(r)
        if r == int(Relationship.CUSTOMER_TO_PROVIDER):
            lookup[(u, v)] = +1  # customer -> provider: uphill
            lookup[(v, u)] = -1  # provider -> customer: downhill
        else:
            lookup[(u, v)] = 0
            lookup[(v, u)] = 0
    return lookup


def is_valley_free(graph: ASGraph, path: Sequence[int]) -> bool:
    """Check the valley-free property of an explicit vertex path.

    Grammar: ``uphill* (peer)? downhill*``.  Single-vertex paths are
    trivially valid; unknown edges raise :class:`AlgorithmError`.
    """
    if len(path) == 0:
        raise AlgorithmError("path must contain at least one vertex")
    if len(path) == 1:
        return True
    lookup = _edge_relationship_lookup(graph)
    state = _UP
    for a, b in zip(path[:-1], path[1:]):
        hop = lookup.get((int(a), int(b)))
        if hop is None:
            raise AlgorithmError(f"({a}, {b}) is not an edge of the graph")
        if hop == +1:
            if state != _UP:
                return False  # climbing after the peak is a valley
        elif hop == 0:
            if state != _UP:
                return False  # at most one peer hop, only at the peak
            state = _PEAK
        else:  # downhill
            state = _DOWN
    return True


def _product_bfs(graph: ASGraph, source: int) -> np.ndarray:
    """Shortest valley-free hop distances from ``source`` (-1 unreachable).

    BFS over (vertex, state) with state transitions:
    UP --uphill--> UP; UP --peer--> PEAK; any --downhill--> DOWN;
    PEAK/DOWN accept only downhill.
    """
    n = graph.num_nodes
    if not 0 <= source < n:
        raise AlgorithmError(f"source {source} out of range")
    rels = graph.edge_rels
    # Build per-vertex outgoing hop lists once: (neighbor, hop_type).
    # Vectorized alternative is possible but this search is test-scale.
    out: list[list[tuple[int, int]]] = [[] for _ in range(n)]
    for u, v, r in zip(graph.edge_src, graph.edge_dst, rels):
        u, v, r = int(u), int(v), int(r)
        if r == int(Relationship.CUSTOMER_TO_PROVIDER):
            out[u].append((v, +1))
            out[v].append((u, -1))
        else:
            out[u].append((v, 0))
            out[v].append((u, 0))
    dist = np.full((n, 3), -1, dtype=np.int64)
    dist[source, _UP] = 0
    frontier = [(source, _UP)]
    depth = 0
    while frontier:
        depth += 1
        nxt: list[tuple[int, int]] = []
        for u, state in frontier:
            for v, hop in out[u]:
                if hop == +1 and state == _UP:
                    new_state = _UP
                elif hop == 0 and state == _UP:
                    new_state = _PEAK
                elif hop == -1:
                    new_state = _DOWN
                else:
                    continue
                if dist[v, new_state] == -1:
                    dist[v, new_state] = depth
                    nxt.append((v, new_state))
        frontier = nxt
    best = np.full(n, -1, dtype=np.int64)
    for v in range(n):
        reachable = dist[v][dist[v] >= 0]
        if len(reachable):
            best[v] = reachable.min()
    best[source] = 0
    return best


def valley_free_reachable(graph: ASGraph, source: int) -> np.ndarray:
    """Boolean mask of vertices with a valley-free path from ``source``."""
    return _product_bfs(graph, source) >= 0


def valley_free_shortest_path(
    graph: ASGraph, source: int, target: int
) -> list[int] | None:
    """One shortest valley-free path, or ``None`` when unreachable.

    Reconstructed by re-running the product BFS with parent pointers;
    intended for examples and tests rather than bulk evaluation.
    """
    n = graph.num_nodes
    if not (0 <= source < n and 0 <= target < n):
        raise AlgorithmError("source/target out of range")
    if source == target:
        return [source]
    out: list[list[tuple[int, int]]] = [[] for _ in range(n)]
    for u, v, r in zip(graph.edge_src, graph.edge_dst, graph.edge_rels):
        u, v, r = int(u), int(v), int(r)
        if r == int(Relationship.CUSTOMER_TO_PROVIDER):
            out[u].append((v, +1))
            out[v].append((u, -1))
        else:
            out[u].append((v, 0))
            out[v].append((u, 0))
    parent: dict[tuple[int, int], tuple[int, int]] = {}
    seen = {(source, _UP)}
    frontier = [(source, _UP)]
    goal: tuple[int, int] | None = None
    while frontier and goal is None:
        nxt: list[tuple[int, int]] = []
        for u, state in frontier:
            for v, hop in out[u]:
                if hop == +1 and state == _UP:
                    new_state = _UP
                elif hop == 0 and state == _UP:
                    new_state = _PEAK
                elif hop == -1:
                    new_state = _DOWN
                else:
                    continue
                key = (v, new_state)
                if key in seen:
                    continue
                seen.add(key)
                parent[key] = (u, state)
                if v == target:
                    goal = key
                    break
                nxt.append(key)
            if goal is not None:
                break
        frontier = nxt
    if goal is None:
        return None
    path = [goal[0]]
    key = goal
    while key != (source, _UP):
        key = parent[key]
        path.append(key[0])
    path.reverse()
    return path
