"""QoS-attributed links and QoS-constrained brokered paths.

The broker set exists to deliver *QoS guarantees*, so the library models
the quantities an SLA would actually specify: per-link latency and
bandwidth.  This module provides

* :class:`LinkMetrics` — latency/bandwidth annotations over an
  :class:`~repro.graph.asgraph.ASGraph`'s edge list, with a synthetic
  model (intra-continental IXP fabrics are fast; crossing the transit
  hierarchy costs more);
* :func:`qos_shortest_path` — minimum-latency path subject to a
  bandwidth floor, restricted to B-dominated edges (Dijkstra on the
  filtered dominated graph);
* :func:`qos_coverage` — the fraction of pairs servable within a latency
  budget and bandwidth floor, the QoS analogue of l-hop connectivity.

This is the "computing QoS-constrained paths" capability the related
work ([7], [9], [10]) builds *inside* a known subtopology — here the
dominated graph takes that role, which is the paper's whole point: the
broker set is the subtopology you can measure and control.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.core.engine import DominationEngine
from repro.exceptions import AlgorithmError
from repro.graph.asgraph import ASGraph
from repro.types import Relationship
from repro.utils.rng import SeedLike, ensure_rng


@dataclass(frozen=True)
class LinkMetrics:
    """Per-undirected-edge latency (ms) and bandwidth (Gbps) annotations."""

    latency_ms: np.ndarray
    bandwidth_gbps: np.ndarray

    def __post_init__(self) -> None:
        if self.latency_ms.shape != self.bandwidth_gbps.shape:
            raise AlgorithmError("latency/bandwidth arrays must align")
        if (self.latency_ms <= 0).any() or (self.bandwidth_gbps <= 0).any():
            raise AlgorithmError("latency and bandwidth must be positive")


def synthesize_link_metrics(
    graph: ASGraph, *, seed: SeedLike = 0
) -> LinkMetrics:
    """Generate plausible latency/bandwidth per edge.

    * IXP membership links: metro-area fabrics — 0.5-3 ms, 10-100 Gbps.
    * Peering links: 2-25 ms, 10-100 Gbps.
    * Customer/provider links: 5-60 ms (long-haul transit), 1-40 Gbps,
      with capacity loosely increasing in the provider's degree.
    """
    rng = ensure_rng(seed)
    m = graph.num_edges
    latency = np.empty(m)
    bandwidth = np.empty(m)
    degrees = graph.degrees()
    for i in range(m):
        rel = int(graph.edge_rels[i])
        if rel == int(Relationship.IXP_MEMBERSHIP):
            latency[i] = rng.uniform(0.5, 3.0)
            bandwidth[i] = rng.uniform(10.0, 100.0)
        elif rel == int(Relationship.PEER_TO_PEER):
            latency[i] = rng.uniform(2.0, 25.0)
            bandwidth[i] = rng.uniform(10.0, 100.0)
        else:
            latency[i] = rng.uniform(5.0, 60.0)
            provider = int(graph.edge_dst[i])
            scale = 1.0 + 39.0 * min(degrees[provider] / max(degrees.max(), 1), 1.0)
            bandwidth[i] = rng.uniform(1.0, scale)
    return LinkMetrics(latency_ms=latency, bandwidth_gbps=bandwidth)


@dataclass(frozen=True)
class QoSPath:
    """A latency-optimal B-dominated path meeting a bandwidth floor."""

    path: list[int]
    latency_ms: float
    bottleneck_gbps: float

    @property
    def hops(self) -> int:
        return len(self.path) - 1


def _build_weighted_adjacency(
    graph: ASGraph,
    metrics: LinkMetrics,
    brokers: list[int] | None,
    min_bandwidth_gbps: float,
    engine: DominationEngine | None = None,
) -> list[list[tuple[int, float, float]]]:
    """Adjacency lists of (neighbor, latency, bandwidth), filtered.

    ``engine`` routes over a live (possibly degraded) domination state:
    only alive base edges with an effective broker endpoint survive.
    Engine extension edges carry no metrics and are not used.
    """
    n = graph.num_nodes
    keep = metrics.bandwidth_gbps >= min_bandwidth_gbps
    if engine is not None:
        keep = keep & engine.dominated_base_edge_mask()
    elif brokers is not None:
        dominated = DominationEngine(
            graph, dict.fromkeys(int(b) for b in brokers)
        )
        keep = keep & dominated.dominated_base_edge_mask()
    adj: list[list[tuple[int, float, float]]] = [[] for _ in range(n)]
    for i in np.flatnonzero(keep):
        u, v = int(graph.edge_src[i]), int(graph.edge_dst[i])
        lat, bw = float(metrics.latency_ms[i]), float(metrics.bandwidth_gbps[i])
        adj[u].append((v, lat, bw))
        adj[v].append((u, lat, bw))
    return adj


def qos_shortest_path(
    graph: ASGraph,
    metrics: LinkMetrics,
    source: int,
    target: int,
    *,
    brokers: list[int] | None = None,
    min_bandwidth_gbps: float = 0.0,
    engine: DominationEngine | None = None,
) -> QoSPath | None:
    """Minimum-latency (optionally B-dominated) path above a bandwidth floor.

    Classic Dijkstra over the filtered adjacency; returns ``None`` when no
    compliant path exists.  ``brokers=None`` searches the full topology —
    the baseline an SLA negotiator compares the brokered offer against.
    Passing ``engine`` routes over its live (possibly degraded) state.
    """
    n = graph.num_nodes
    if not (0 <= source < n and 0 <= target < n):
        raise AlgorithmError("source/target out of range")
    if source == target:
        return QoSPath([source], 0.0, float("inf"))
    adj = _build_weighted_adjacency(
        graph, metrics, brokers, min_bandwidth_gbps, engine=engine
    )
    dist = np.full(n, np.inf)
    parent = np.full(n, -1, dtype=np.int64)
    bottleneck = np.zeros(n)
    dist[source] = 0.0
    bottleneck[source] = float("inf")
    heap = [(0.0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist[u]:
            continue
        if u == target:
            break
        for v, lat, bw in adj[u]:
            nd = d + lat
            if nd < dist[v]:
                dist[v] = nd
                parent[v] = u
                bottleneck[v] = min(bottleneck[u], bw)
                heapq.heappush(heap, (nd, v))
    if not np.isfinite(dist[target]):
        return None
    path = [target]
    while path[-1] != source:
        path.append(int(parent[path[-1]]))
    path.reverse()
    return QoSPath(
        path=path,
        latency_ms=float(dist[target]),
        bottleneck_gbps=float(bottleneck[target]),
    )


def qos_coverage(
    graph: ASGraph,
    metrics: LinkMetrics,
    brokers: list[int] | None,
    *,
    max_latency_ms: float,
    min_bandwidth_gbps: float = 0.0,
    num_pairs: int = 500,
    seed: SeedLike = 0,
    engine: DominationEngine | None = None,
) -> float:
    """Fraction of sampled pairs servable within the QoS budget.

    The QoS analogue of l-hop connectivity: a pair counts when a
    (B-dominated) path exists with end-to-end latency ``<= max_latency_ms``
    whose every link offers ``>= min_bandwidth_gbps``.
    """
    if max_latency_ms <= 0:
        raise AlgorithmError("max_latency_ms must be positive")
    rng = ensure_rng(seed)
    n = graph.num_nodes
    adj = _build_weighted_adjacency(
        graph, metrics, brokers, min_bandwidth_gbps, engine=engine
    )
    served = 0
    # One Dijkstra per sampled source, reused for several targets.
    sources = rng.integers(0, n, size=max(num_pairs // 8, 1))
    targets_per_source = max(num_pairs // len(sources), 1)
    total = 0
    for s in sources:
        s = int(s)
        dist = np.full(n, np.inf)
        dist[s] = 0.0
        heap = [(0.0, s)]
        while heap:
            d, u = heapq.heappop(heap)
            if d > dist[u] or d > max_latency_ms:
                continue
            for v, lat, _bw in adj[u]:
                nd = d + lat
                if nd < dist[v]:
                    dist[v] = nd
                    heapq.heappush(heap, (nd, v))
        for t in rng.integers(0, n, size=targets_per_source):
            t = int(t)
            if t == s:
                continue
            total += 1
            if dist[t] <= max_latency_ms:
                served += 1
    return served / total if total else 0.0
