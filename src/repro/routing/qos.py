"""QoS-attributed links and QoS-constrained brokered paths.

The broker set exists to deliver *QoS guarantees*, so the library models
the quantities an SLA would actually specify: per-link latency and
bandwidth.  This module provides

* :class:`LinkMetrics` — latency/bandwidth annotations over an
  :class:`~repro.graph.asgraph.ASGraph`'s edge list, with a synthetic
  model (intra-continental IXP fabrics are fast; crossing the transit
  hierarchy costs more);
* :func:`qos_shortest_path` — minimum-latency path subject to a
  bandwidth floor, restricted to B-dominated edges (Dijkstra on the
  filtered dominated graph);
* :func:`qos_coverage` — the fraction of pairs servable within a latency
  budget and bandwidth floor, the QoS analogue of l-hop connectivity.

This is the "computing QoS-constrained paths" capability the related
work ([7], [9], [10]) builds *inside* a known subtopology — here the
dominated graph takes that role, which is the paper's whole point: the
broker set is the subtopology you can measure and control.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.core.engine import DominationEngine
from repro.exceptions import AlgorithmError
from repro.graph.asgraph import ASGraph, EdgeAttributes
from repro.graph.multigraph import MultiGraph
from repro.types import LinkKind, Relationship
from repro.utils.rng import SeedLike, ensure_rng


def _metric_array(values, what: str) -> np.ndarray:
    """Coerce and validate one per-edge metric array.

    Accepts any 1-D numeric array-like (lists included — the historical
    ``__post_init__`` crashed on those with a bare ``AttributeError``),
    rejects non-numeric dtypes instead of silently comparing them, and
    allows the empty edge list (an edgeless graph is a valid topology).
    """
    arr = np.asarray(values)
    if arr.ndim != 1:
        raise AlgorithmError(f"{what} must be 1-D, got shape {arr.shape}")
    if not (
        np.issubdtype(arr.dtype, np.floating)
        or np.issubdtype(arr.dtype, np.integer)
    ):
        raise AlgorithmError(f"{what} must be numeric, got dtype {arr.dtype}")
    arr = np.ascontiguousarray(arr, dtype=np.float64)
    if len(arr):
        if not np.isfinite(arr).all():
            raise AlgorithmError(f"{what} must be finite")
        if (arr <= 0).any():
            raise AlgorithmError(f"{what} must be strictly positive")
    return arr


@dataclass(frozen=True)
class LinkMetrics:
    """Per-undirected-edge latency (ms) and bandwidth (Gbps) annotations.

    .. deprecated::
        ``LinkMetrics`` predates the first-class edge attributes on
        :class:`~repro.graph.asgraph.ASGraph`; it is kept as a thin
        adapter so existing call sites and pickles keep working.  New
        code should attach :class:`~repro.graph.asgraph.EdgeAttributes`
        to the graph (``graph.with_edge_attrs(...)``) and let the QoS
        functions read them directly (``metrics=None``).
    """

    latency_ms: np.ndarray
    bandwidth_gbps: np.ndarray

    def __post_init__(self) -> None:
        latency = _metric_array(self.latency_ms, "latency_ms")
        bandwidth = _metric_array(self.bandwidth_gbps, "bandwidth_gbps")
        if latency.shape != bandwidth.shape:
            raise AlgorithmError(
                "latency/bandwidth arrays must align: "
                f"{latency.shape} vs {bandwidth.shape}"
            )
        object.__setattr__(self, "latency_ms", latency)
        object.__setattr__(self, "bandwidth_gbps", bandwidth)

    @classmethod
    def from_edge_attrs(cls, attrs: EdgeAttributes) -> "LinkMetrics":
        """Adapt first-class edge attributes to the legacy metric pair."""
        return cls(
            latency_ms=attrs.latency_ms, bandwidth_gbps=attrs.capacity_gbps
        )

    def to_edge_attrs(
        self, link_kind: np.ndarray | None = None
    ) -> EdgeAttributes:
        """Lift to :class:`EdgeAttributes` (default kind: private peering)."""
        if link_kind is None:
            link_kind = np.full(
                len(self.latency_ms), int(LinkKind.PRIVATE_PEERING), dtype=np.uint8
            )
        return EdgeAttributes(
            capacity_gbps=self.bandwidth_gbps,
            latency_ms=self.latency_ms,
            link_kind=link_kind,
        )


def _resolve_metrics(graph: ASGraph, metrics: LinkMetrics | None) -> LinkMetrics:
    """Explicit metrics win; otherwise read the graph's own attributes."""
    if metrics is not None:
        if len(metrics.latency_ms) != graph.num_edges:
            raise AlgorithmError(
                f"metrics carry {len(metrics.latency_ms)} edges, "
                f"graph has {graph.num_edges}"
            )
        return metrics
    if graph.edge_attrs is None:
        raise AlgorithmError(
            "no metrics given and the graph carries no edge attributes; "
            "pass metrics= or annotate the graph via with_edge_attrs()"
        )
    return LinkMetrics.from_edge_attrs(graph.edge_attrs)


def synthesize_link_metrics(
    graph: ASGraph, *, seed: SeedLike = 0
) -> LinkMetrics:
    """Generate plausible latency/bandwidth per edge.

    * IXP membership links: metro-area fabrics — 0.5-3 ms, 10-100 Gbps.
    * Peering links: 2-25 ms, 10-100 Gbps.
    * Customer/provider links: 5-60 ms (long-haul transit), 1-40 Gbps,
      with capacity loosely increasing in the provider's degree.
    """
    rng = ensure_rng(seed)
    m = graph.num_edges
    latency = np.empty(m)
    bandwidth = np.empty(m)
    degrees = graph.degrees()
    for i in range(m):
        rel = int(graph.edge_rels[i])
        if rel == int(Relationship.IXP_MEMBERSHIP):
            latency[i] = rng.uniform(0.5, 3.0)
            bandwidth[i] = rng.uniform(10.0, 100.0)
        elif rel == int(Relationship.PEER_TO_PEER):
            latency[i] = rng.uniform(2.0, 25.0)
            bandwidth[i] = rng.uniform(10.0, 100.0)
        else:
            latency[i] = rng.uniform(5.0, 60.0)
            provider = int(graph.edge_dst[i])
            scale = 1.0 + 39.0 * min(degrees[provider] / max(degrees.max(), 1), 1.0)
            bandwidth[i] = rng.uniform(1.0, scale)
    return LinkMetrics(latency_ms=latency, bandwidth_gbps=bandwidth)


@dataclass(frozen=True)
class QoSPath:
    """A latency-optimal B-dominated path meeting a bandwidth floor.

    ``edge_ids`` lists the base-edge index of every hop (aligned with the
    owning graph's canonical edge list), which is what the admission
    layer's residual-capacity accounting reserves against.
    """

    path: list[int]
    latency_ms: float
    bottleneck_gbps: float
    edge_ids: tuple[int, ...] = ()

    @property
    def hops(self) -> int:
        return len(self.path) - 1


@dataclass(frozen=True)
class MultiQoSPath:
    """A QoS path over a multigraph, pinned to concrete edge instances.

    ``instance_ids[k]`` is the parallel edge instance chosen for hop
    ``path[k] -> path[k+1]`` — the min-latency instance among those whose
    capacity meets the demand (the "min-latency-over-max-capacity" rule).
    """

    path: list[int]
    instance_ids: tuple[int, ...]
    latency_ms: float
    bottleneck_gbps: float

    @property
    def hops(self) -> int:
        return len(self.path) - 1


def _build_weighted_adjacency(
    graph: ASGraph,
    latency: np.ndarray,
    bandwidth: np.ndarray,
    keep: np.ndarray,
    brokers: list[int] | None,
    engine: DominationEngine | None = None,
) -> list[list[tuple[int, float, float, int]]]:
    """Adjacency lists of (neighbor, latency, bandwidth, edge_id), filtered.

    ``engine`` routes over a live (possibly degraded) domination state:
    only alive base edges with an effective broker endpoint survive.
    Engine extension edges carry no metrics and are not used.
    """
    n = graph.num_nodes
    if engine is not None:
        keep = keep & engine.dominated_base_edge_mask()
    elif brokers is not None:
        dominated = DominationEngine(
            graph, dict.fromkeys(int(b) for b in brokers)
        )
        keep = keep & dominated.dominated_base_edge_mask()
    adj: list[list[tuple[int, float, float, int]]] = [[] for _ in range(n)]
    for i in np.flatnonzero(keep):
        u, v = int(graph.edge_src[i]), int(graph.edge_dst[i])
        lat, bw = float(latency[i]), float(bandwidth[i])
        adj[u].append((v, lat, bw, int(i)))
        adj[v].append((u, lat, bw, int(i)))
    return adj


def _dijkstra_qos(
    graph: ASGraph,
    latency: np.ndarray,
    bandwidth: np.ndarray,
    keep: np.ndarray,
    source: int,
    target: int,
    brokers: list[int] | None,
    engine: DominationEngine | None,
) -> QoSPath | None:
    n = graph.num_nodes
    if not (0 <= source < n and 0 <= target < n):
        raise AlgorithmError("source/target out of range")
    if source == target:
        return QoSPath([source], 0.0, float("inf"))
    adj = _build_weighted_adjacency(
        graph, latency, bandwidth, keep, brokers, engine=engine
    )
    dist = np.full(n, np.inf)
    parent = np.full(n, -1, dtype=np.int64)
    parent_edge = np.full(n, -1, dtype=np.int64)
    bottleneck = np.zeros(n)
    dist[source] = 0.0
    bottleneck[source] = float("inf")
    heap = [(0.0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist[u]:
            continue
        if u == target:
            break
        for v, lat, bw, eid in adj[u]:
            nd = d + lat
            if nd < dist[v]:
                dist[v] = nd
                parent[v] = u
                parent_edge[v] = eid
                bottleneck[v] = min(bottleneck[u], bw)
                heapq.heappush(heap, (nd, v))
    if not np.isfinite(dist[target]):
        return None
    path = [target]
    edge_ids: list[int] = []
    while path[-1] != source:
        edge_ids.append(int(parent_edge[path[-1]]))
        path.append(int(parent[path[-1]]))
    path.reverse()
    edge_ids.reverse()
    return QoSPath(
        path=path,
        latency_ms=float(dist[target]),
        bottleneck_gbps=float(bottleneck[target]),
        edge_ids=tuple(edge_ids),
    )


def qos_shortest_path(
    graph: ASGraph,
    metrics: LinkMetrics | None,
    source: int,
    target: int,
    *,
    brokers: list[int] | None = None,
    min_bandwidth_gbps: float = 0.0,
    engine: DominationEngine | None = None,
) -> QoSPath | None:
    """Minimum-latency (optionally B-dominated) path above a bandwidth floor.

    Classic Dijkstra over the filtered adjacency; returns ``None`` when no
    compliant path exists.  ``brokers=None`` searches the full topology —
    the baseline an SLA negotiator compares the brokered offer against.
    Passing ``engine`` routes over its live (possibly degraded) state.
    ``metrics=None`` reads the graph's own edge attributes.
    """
    metrics = _resolve_metrics(graph, metrics)
    keep = metrics.bandwidth_gbps >= min_bandwidth_gbps
    return _dijkstra_qos(
        graph,
        metrics.latency_ms,
        metrics.bandwidth_gbps,
        keep,
        source,
        target,
        brokers,
        engine,
    )


def multigraph_qos_path(
    multigraph: MultiGraph,
    source: int,
    target: int,
    *,
    demand_gbps: float = 0.0,
    brokers: list[int] | None = None,
    engine: DominationEngine | None = None,
    residual_gbps: np.ndarray | None = None,
) -> MultiQoSPath | None:
    """Min-latency path over a multigraph for a bandwidth demand.

    For every bundle of parallel instances, the instance actually used is
    the minimum-latency one among those whose capacity (or, when
    ``residual_gbps`` is given, whose *residual* capacity) meets
    ``demand_gbps``; bundles with no qualifying instance drop out of the
    search entirely.  The search itself runs on the simplified view —
    pass ``engine`` (built via ``DominationEngine.from_multigraph``) to
    restrict to the live dominated subtopology.
    """
    capacity = (
        multigraph.attrs.capacity_gbps if residual_gbps is None else residual_gbps
    )
    if len(capacity) != multigraph.num_edge_instances:
        raise AlgorithmError(
            f"residual array carries {len(capacity)} instances, "
            f"multigraph has {multigraph.num_edge_instances}"
        )
    view = multigraph.simplify(annotate=False)
    edge_of_instance = view.edge_of_instance
    n_simple = view.graph.num_edges
    ok_inst = capacity >= demand_gbps
    inst_latency = np.where(ok_inst, multigraph.attrs.latency_ms, np.inf)
    best_latency = np.full(n_simple, np.inf, dtype=np.float64)
    np.minimum.at(best_latency, edge_of_instance, inst_latency)
    achieves = inst_latency == best_latency[edge_of_instance]
    best_instance = np.full(n_simple, np.iinfo(np.int64).max, dtype=np.int64)
    ids = np.arange(multigraph.num_edge_instances, dtype=np.int64)
    np.minimum.at(best_instance, edge_of_instance[achieves], ids[achieves])
    keep = np.isfinite(best_latency)
    best_instance[~keep] = -1
    bandwidth = np.where(keep, capacity[np.maximum(best_instance, 0)], 0.0)
    latency = np.where(keep, best_latency, 1.0)
    result = _dijkstra_qos(
        view.graph, latency, bandwidth, keep, source, target, brokers, engine
    )
    if result is None:
        return None
    return MultiQoSPath(
        path=result.path,
        instance_ids=tuple(int(best_instance[e]) for e in result.edge_ids),
        latency_ms=result.latency_ms,
        bottleneck_gbps=result.bottleneck_gbps,
    )


def qos_coverage(
    graph: ASGraph,
    metrics: LinkMetrics | None,
    brokers: list[int] | None,
    *,
    max_latency_ms: float,
    min_bandwidth_gbps: float = 0.0,
    num_pairs: int = 500,
    seed: SeedLike = 0,
    engine: DominationEngine | None = None,
) -> float:
    """Fraction of sampled pairs servable within the QoS budget.

    The QoS analogue of l-hop connectivity: a pair counts when a
    (B-dominated) path exists with end-to-end latency ``<= max_latency_ms``
    whose every link offers ``>= min_bandwidth_gbps``.  ``metrics=None``
    reads the graph's own edge attributes.
    """
    if max_latency_ms <= 0:
        raise AlgorithmError("max_latency_ms must be positive")
    rng = ensure_rng(seed)
    n = graph.num_nodes
    metrics = _resolve_metrics(graph, metrics)
    adj = _build_weighted_adjacency(
        graph,
        metrics.latency_ms,
        metrics.bandwidth_gbps,
        metrics.bandwidth_gbps >= min_bandwidth_gbps,
        brokers,
        engine=engine,
    )
    served = 0
    # One Dijkstra per sampled source, reused for several targets.
    sources = rng.integers(0, n, size=max(num_pairs // 8, 1))
    targets_per_source = max(num_pairs // len(sources), 1)
    total = 0
    for s in sources:
        s = int(s)
        dist = np.full(n, np.inf)
        dist[s] = 0.0
        heap = [(0.0, s)]
        while heap:
            d, u = heapq.heappop(heap)
            if d > dist[u] or d > max_latency_ms:
                continue
            for v, lat, _bw, _eid in adj[u]:
                nd = d + lat
                if nd < dist[v]:
                    dist[v] = nd
                    heapq.heappush(heap, (nd, v))
        for t in rng.integers(0, n, size=targets_per_source):
            t = int(t)
            if t == s:
                continue
            total += 1
            if dist[t] <= max_latency_ms:
                served += 1
    return served / total if total else 0.0
