"""Routing substrate: policies, valley-free checks, BGP, broker stitching."""

from repro.routing.bgp import BGPSimulator, RouteInfo
from repro.routing.broker_routing import (
    BrokeredRoute,
    BrokerRouter,
    ServiceLevelAgreement,
    broker_only_fraction,
)
from repro.routing.policies import (
    DirectionalPolicy,
    PolicyMatrices,
    build_policy_matrices,
    coalition_edges,
    inter_broker_edge_mask,
    policy_connectivity_curve,
)
from repro.routing.qos import (
    LinkMetrics,
    MultiQoSPath,
    QoSPath,
    multigraph_qos_path,
    qos_coverage,
    qos_shortest_path,
    synthesize_link_metrics,
)
from repro.routing.valley_free import (
    is_valley_free,
    valley_free_reachable,
    valley_free_shortest_path,
)

__all__ = [
    "BGPSimulator",
    "RouteInfo",
    "BrokerRouter",
    "BrokeredRoute",
    "ServiceLevelAgreement",
    "broker_only_fraction",
    "DirectionalPolicy",
    "PolicyMatrices",
    "build_policy_matrices",
    "coalition_edges",
    "inter_broker_edge_mask",
    "policy_connectivity_curve",
    "is_valley_free",
    "valley_free_reachable",
    "valley_free_shortest_path",
    "LinkMetrics",
    "QoSPath",
    "MultiQoSPath",
    "synthesize_link_metrics",
    "qos_shortest_path",
    "multigraph_qos_path",
    "qos_coverage",
]
