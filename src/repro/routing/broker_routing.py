"""Brokered path establishment: stitching, SLAs, broker-only statistics.

This is the *data-plane view* of the brokerage scheme: given a broker set
``B``, a :class:`BrokerRouter` answers path requests with B-dominated
routes, models the SLA a customer signs with the coalition, and reports
which routes needed non-broker "employee" ASes (the economic model's hired
transits, Fig. 6's AS 5).

Fig. 5a's headline — *more than 90 % of E2E connections can be carried by
the 3,540-alliance solely* — is reproduced by
:func:`broker_only_fraction`, which measures how often a shortest
B-dominated path exists whose interior vertices are all brokers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.engine import DominationEngine
from repro.exceptions import AlgorithmError
from repro.graph.asgraph import ASGraph
from repro.graph.csr import UNREACHABLE, bfs_levels, bfs_parents, build_csr
from repro.graph.multigraph import MultiGraph
from repro.routing.qos import MultiQoSPath, multigraph_qos_path
from repro.utils.rng import SeedLike, ensure_rng


@dataclass(frozen=True)
class ServiceLevelAgreement:
    """Terms a customer AS signs with the broker coalition.

    Prices are per unit traffic volume, mirroring Section 7's model: the
    coalition charges both endpoints ``price`` and guarantees an E2E path
    of at most ``max_hops`` hops dominated by the coalition.
    """

    customer: int
    price: float
    max_hops: int = 8

    def __post_init__(self) -> None:
        if self.price < 0:
            raise AlgorithmError("SLA price must be non-negative")
        if self.max_hops < 1:
            raise AlgorithmError("SLA max_hops must be >= 1")


@dataclass(frozen=True)
class BrokeredRoute:
    """A route served by the brokerage."""

    source: int
    destination: int
    path: list[int]
    #: Interior vertices that are not brokers — the "employees" the
    #: coalition must hire (and pay) to complete this route.
    hired_transits: list[int] = field(default_factory=list)

    @property
    def hops(self) -> int:
        return len(self.path) - 1

    @property
    def broker_only(self) -> bool:
        """True when no non-broker interior vertex was needed."""
        return not self.hired_transits


class BrokerRouter:
    """Serves B-dominated routes over a fixed topology and broker set.

    The dominated adjacency, broker mask, and broker-interior adjacency
    all come from a :class:`~repro.core.engine.DominationEngine` snapshot,
    so the data plane and the selection algorithms share one definition
    of ``B ⊙ A``.  :meth:`from_engine` builds a router over a *degraded*
    engine (failed nodes, cut links) — routes then use only alive edges.
    """

    def __init__(self, graph: ASGraph, brokers: list[int]) -> None:
        if not brokers:
            raise AlgorithmError("broker set must be non-empty")
        for b in brokers:
            if not 0 <= int(b) < graph.num_nodes:
                raise AlgorithmError(f"broker id {b} out of range")
        self._init_from_engine(
            DominationEngine(graph, dict.fromkeys(int(b) for b in brokers))
        )

    @classmethod
    def from_engine(cls, engine: DominationEngine) -> "BrokerRouter":
        """Router over the engine's *current* (possibly degraded) state.

        The router is a snapshot: later engine mutations do not update it.
        """
        if not engine.brokers():
            raise AlgorithmError("broker set must be non-empty")
        router = cls.__new__(cls)
        router._init_from_engine(engine)
        return router

    @classmethod
    def over_multigraph(
        cls, multigraph: MultiGraph, brokers: list[int]
    ) -> "BrokerRouter":
        """Router over a multigraph's dominated simplified view.

        Hop-count routes (:meth:`route`) behave exactly as on the simple
        projection; :meth:`route_demand` additionally serves guaranteed-
        bandwidth requests by picking, on every hop, the min-latency
        parallel instance whose capacity meets the demand.
        """
        if not brokers:
            raise AlgorithmError("broker set must be non-empty")
        engine = DominationEngine(
            multigraph.simplify().graph,
            dict.fromkeys(int(b) for b in brokers),
        )
        router = cls.from_engine(engine)
        router._multigraph = multigraph
        router._engine = engine
        return router

    def route_demand(
        self,
        source: int,
        destination: int,
        demand_gbps: float,
        *,
        residual_gbps=None,
    ) -> MultiQoSPath | None:
        """Min-latency dominated route meeting a bandwidth demand.

        Only available on routers built via :meth:`over_multigraph`.
        ``residual_gbps`` (per edge instance) routes against currently
        *unreserved* capacity — the admission layer threads its residual
        accounting through here.
        """
        if self._multigraph is None or self._engine is None:
            raise AlgorithmError(
                "capacity-aware routing needs a multigraph; build the "
                "router with BrokerRouter.over_multigraph()"
            )
        return multigraph_qos_path(
            self._multigraph,
            source,
            destination,
            demand_gbps=demand_gbps,
            engine=self._engine,
            residual_gbps=residual_gbps,
        )

    def _init_from_engine(self, engine: DominationEngine) -> None:
        n = engine.num_nodes
        self._graph = engine.graph
        self._num_nodes = n
        self._brokers = engine.brokers()
        self._mask = engine.effective_broker_mask().copy()
        self._multigraph: MultiGraph | None = None
        self._engine: DominationEngine | None = None
        src, dst = engine.dominated_alive_edges()
        self._dominated = build_csr(n, src, dst)
        # Broker-interior adjacency: edges whose *interior use* is free for
        # the coalition — both endpoints brokers, or one endpoint broker
        # and the other an endpoint of the route (handled at query time by
        # allowing the first/last hop to leave the broker sub-adjacency).
        keep = self._mask[src] & self._mask[dst]
        self._broker_adj = build_csr(n, src[keep], dst[keep])

    @property
    def brokers(self) -> list[int]:
        return list(self._brokers)

    def route(self, source: int, destination: int) -> BrokeredRoute | None:
        """Shortest B-dominated route, or ``None`` when not serveable.

        Prefers a *broker-only* route (interior vertices all brokers) of
        equal length when one exists; otherwise returns the shortest
        dominated route and reports which interior vertices must be hired.
        """
        n = self._num_nodes
        if not (0 <= source < n and 0 <= destination < n):
            raise AlgorithmError("source/destination out of range")
        if source == destination:
            return BrokeredRoute(source, destination, [source])
        dist = bfs_levels(self._dominated, source)
        if dist[destination] == UNREACHABLE:
            return None
        parent = bfs_parents(self._dominated, source)
        path = [destination]
        while path[-1] != source:
            path.append(int(parent[path[-1]]))
        path.reverse()
        # Try to upgrade to a broker-only route of the same length: route
        # source -> (broker neighbourhood) ... -> destination where all
        # interior vertices are brokers.
        broker_path = self._broker_only_path(source, destination)
        if broker_path is not None and len(broker_path) <= len(path):
            path = broker_path
        hired = [v for v in path[1:-1] if not self._mask[v]]
        return BrokeredRoute(source, destination, path, hired_transits=hired)

    def _broker_only_path(self, source: int, destination: int) -> list[int] | None:
        """Shortest path whose interior is entirely inside the broker set."""
        # BFS over brokers, seeded by the source's broker neighbours.  An
        # endpoint-to-broker edge is dominated by definition, so the
        # dominated adjacency holds exactly the gate edges we need.
        seeds = [
            int(v) for v in self._dominated.neighbors(source) if self._mask[v]
        ]
        if self._mask[source]:
            seeds.append(source)
        if not seeds:
            return None
        dest_gate = set(
            int(v)
            for v in self._dominated.neighbors(destination)
            if self._mask[v]
        )
        if self._mask[destination]:
            dest_gate.add(destination)
        if not dest_gate:
            return None
        parent = {s: source for s in seeds}
        frontier = list(dict.fromkeys(seeds))
        hit: int | None = None
        for s in frontier:
            if s in dest_gate:
                hit = s
                break
        while frontier and hit is None:
            nxt: list[int] = []
            for u in frontier:
                for w in self._broker_adj.neighbors(u):
                    w = int(w)
                    if w in parent or w == source:
                        continue
                    parent[w] = u
                    if w in dest_gate:
                        hit = w
                        break
                    nxt.append(w)
                if hit is not None:
                    break
            frontier = nxt
        if hit is None:
            return None
        path = [hit]
        while path[-1] != source:
            path.append(parent[path[-1]])
        path.reverse()
        if path[-1] != destination:
            path.append(destination)
        if path[0] != source:  # pragma: no cover - defensive
            raise AlgorithmError("path reconstruction failed")
        return path

    def serve(self, sla: ServiceLevelAgreement, destination: int) -> BrokeredRoute | None:
        """Serve a route under an SLA's hop bound (``None`` = SLA breach)."""
        route = self.route(sla.customer, destination)
        if route is None or route.hops > sla.max_hops:
            return None
        return route


def broker_only_fraction(
    graph: ASGraph,
    brokers: list[int],
    *,
    num_pairs: int = 2000,
    seed: SeedLike = 0,
) -> float:
    """Fraction of serveable pairs carried without hiring non-brokers.

    Samples random *serveable* pairs (a B-dominated path exists) and
    checks whether a broker-only route of equal-or-shorter length exists —
    Fig. 5a's ">90 % of E2E connections use only broker-set nodes".
    """
    router = BrokerRouter(graph, brokers)
    rng = ensure_rng(seed)
    n = graph.num_nodes
    served = 0
    broker_only = 0
    attempts = 0
    max_attempts = num_pairs * 20
    while served < num_pairs and attempts < max_attempts:
        attempts += 1
        u, v = rng.integers(n), rng.integers(n)
        if u == v:
            continue
        route = router.route(int(u), int(v))
        if route is None:
            continue
        served += 1
        if route.broker_only:
            broker_only += 1
    if served == 0:
        return 0.0
    return broker_only / served
