"""SLA monitoring and budgeted self-healing of the broker set.

The coalition sells a guarantee — saturated E2E connectivity — so the
natural SLA is *stay within a threshold of the pre-fault baseline*.
:class:`SelfHealingBrokerSet` absorbs :class:`FaultEvent` deltas, keeps
the degraded topology and broker roster, and, whenever connectivity
falls below the SLA, runs a budgeted greedy *repair*: the same
connected-growth patching rule as
:class:`repro.simulation.churn.IncrementalBrokerSet`, but driven by the
connectivity SLA instead of a coverage target, and with a per-incident
spare budget (a coalition cannot recruit unbounded replacements
overnight).

Everything is deterministic: candidate scans are sorted, ties break to
the smallest id, and no RNG is consulted — so a seeded fault schedule
replays to bit-identical broker sets and repair records.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.engine import DominationEngine
from repro.exceptions import AlgorithmError, ResilienceError
from repro.graph.asgraph import ASGraph
from repro.resilience.faults import FaultEvent, FaultKind


def best_coverage_candidate(
    engine: DominationEngine, *, excluded: set[int]
) -> int | None:
    """Highest coverage-gain recruit under the MaxSG connected-growth rule.

    Candidates are the covered region and its frontier (so the dominated
    region keeps growing connectedly, as in
    ``IncrementalBrokerSet._repair``), falling back to uncovered
    vertices when faults have detached whole regions.  ``excluded``
    vertices (current brokers, crashed brokers, pending recruits) are
    never eligible.  Deterministic: candidates scan in ascending id and
    ties break to the smallest id.  Shared by the SLA self-healer and
    the convergence simulator's repair planner so both make identical
    recruiting decisions.
    """
    covered = engine.covered_view
    candidates: set[int] = set()
    for v in np.flatnonzero(covered):
        v = int(v)
        candidates.add(v)
        candidates.update(int(u) for u in engine.alive_neighbors(v))
    candidates -= excluded
    if not candidates:
        candidates = set(int(v) for v in np.flatnonzero(~covered)) - excluded
    best, best_gain = None, 0
    for c in sorted(candidates):
        gain = engine.marginal_gain(c)
        if gain > best_gain:
            best, best_gain = c, gain
    return best


def best_bridge_candidate(
    engine: DominationEngine,
    *,
    excluded: set[int],
    current: float,
    probe_limit: int = 20,
) -> int | None:
    """Fallback when no recruit gains coverage: bridge components.

    Full coverage does not imply a connected dominated graph — link cuts
    can split it while every vertex still touches a broker.  A new
    broker then helps by dominating the edges *around* itself, so the
    top-``probe_limit`` highest-degree non-excluded vertices are scored
    by their actual connectivity delta.  The engine answers each probe
    in O(deg) from its union-find (``connectivity_if_added``) instead of
    a full dominated-graph rebuild per probe.
    """
    alive_degrees = engine.alive_degrees()
    degrees = {
        v: int(alive_degrees[v]) for v in range(engine.num_nodes)
        if v not in excluded
    }
    if not degrees:
        return None
    probes = sorted(degrees, key=lambda v: (-degrees[v], v))[:probe_limit]
    best, best_value = None, current
    for c in probes:
        value = engine.connectivity_if_added(c)
        if value > best_value + 1e-15:
            best, best_value = c, value
    return best


@dataclass(frozen=True)
class SlaPolicy:
    """When to repair and how much repair is allowed.

    ``threshold`` is relative: the SLA is violated when saturated
    connectivity drops below ``threshold × baseline``.  Each violation
    may recruit at most ``repair_budget`` replacement brokers, and the
    whole campaign at most ``max_total_added`` (``None`` = unbounded).
    """

    threshold: float = 0.9
    repair_budget: int = 5
    max_total_added: int | None = None

    def __post_init__(self) -> None:
        if not 0.0 < self.threshold <= 1.0:
            raise AlgorithmError("SLA threshold must be in (0, 1]")
        if self.repair_budget < 0:
            raise AlgorithmError("repair_budget must be >= 0")


@dataclass(frozen=True)
class RepairRecord:
    """One SLA-triggered repair incident."""

    step: int
    before: float
    after: float
    added: tuple[int, ...]
    healed: bool


class SelfHealingBrokerSet:
    """Broker set + degraded topology under a fault stream.

    All state lives in one :class:`~repro.core.engine.DominationEngine`:
    faults and repairs patch it per event (O(affected neighborhood))
    instead of rebuilding masks, and connectivity probes after a repair
    are O(1) pair-sum queries against its union-find.  Crashed brokers
    are parked in a ``down`` set: they stop dominating edges but may
    return via ``BROKER_UP`` (flapping), at which point they resume
    service — replacements recruited meanwhile simply stay.
    """

    def __init__(
        self,
        graph: ASGraph,
        brokers: list[int],
        *,
        policy: SlaPolicy | None = None,
    ) -> None:
        self._graph = graph
        brokers = sorted(dict.fromkeys(int(b) for b in brokers))
        if not brokers:
            raise AlgorithmError("broker set must be non-empty")
        for b in brokers:
            if not 0 <= b < graph.num_nodes:
                raise AlgorithmError(f"broker id {b} out of range")
        self.policy = policy or SlaPolicy()
        self._engine = DominationEngine(graph, brokers)
        self._active = set(brokers)
        self._down: set[int] = set()
        self.added: list[int] = []
        self.repairs: list[RepairRecord] = []
        self.baseline = self.connectivity()

    # ------------------------------------------------------------------
    # State inspection
    # ------------------------------------------------------------------
    @property
    def active_brokers(self) -> list[int]:
        return sorted(self._active)

    @property
    def down_brokers(self) -> list[int]:
        return sorted(self._down)

    @property
    def sla_target(self) -> float:
        return self.policy.threshold * self.baseline

    @property
    def engine(self) -> DominationEngine:
        """The backing mutable domination state."""
        return self._engine

    def connectivity(self) -> float:
        """Saturated connectivity of the degraded dominated graph."""
        return self._engine.saturated_connectivity()

    def covered_mask(self) -> np.ndarray:
        """Vertices covered by the active brokers on the degraded topology."""
        return self._engine.covered_view.copy()

    # ------------------------------------------------------------------
    # Fault application
    # ------------------------------------------------------------------
    def apply(self, event: FaultEvent) -> None:
        """Absorb one fault delta (no SLA check — see :meth:`maybe_repair`).

        A malformed event — a broker event without a ``node``, a link
        cut without ``endpoints`` — raises a structured
        :class:`~repro.exceptions.ResilienceError` instead of tripping a
        bare assertion.
        """
        if event.kind is FaultKind.BROKER_DOWN:
            if event.node is None:
                raise ResilienceError(
                    "BROKER_DOWN event carries no node", step=event.step
                )
            if event.node in self._active:
                self._active.discard(event.node)
                self._down.add(event.node)
                self._engine.remove_broker(event.node)
        elif event.kind is FaultKind.BROKER_UP:
            if event.node is None:
                raise ResilienceError(
                    "BROKER_UP event carries no node", step=event.step
                )
            if event.node in self._down:
                self._down.discard(event.node)
                self._active.add(event.node)
                self._engine.add_broker(event.node)
        elif event.kind is FaultKind.LINK_CUT:
            if event.endpoints is None:
                raise ResilienceError(
                    "LINK_CUT event carries no endpoints", step=event.step
                )
            u, v = event.endpoints
            self._engine.cut_link(int(u), int(v))

    # ------------------------------------------------------------------
    # Repair
    # ------------------------------------------------------------------
    def recruit(self, broker: int) -> bool:
        """Activate ``broker`` directly, bypassing the SLA check.

        The install path of the convergence simulator, where *planning*
        (a checkpointed dry run of the repair rule) and *installation*
        (this call, after the control-plane latency elapses) happen at
        different times.  Returns ``False`` when the vertex is already
        an active or crashed broker.
        """
        broker = int(broker)
        if broker in self._active or broker in self._down:
            return False
        self._active.add(broker)
        self._engine.add_broker(broker)
        self.added.append(broker)
        return True

    def maybe_repair(self, step: int, *, current: float | None = None) -> RepairRecord | None:
        """Check the SLA and, if violated, run one budgeted repair.

        ``current`` short-circuits the connectivity probe when the caller
        already measured it.  Returns the :class:`RepairRecord`, or
        ``None`` when the SLA holds.
        """
        value = self.connectivity() if current is None else current
        if value >= self.sla_target:
            return None
        before = value
        added: list[int] = []
        budget = self.policy.repair_budget
        if self.policy.max_total_added is not None:
            budget = min(budget, self.policy.max_total_added - len(self.added))
        while budget > 0 and value < self.sla_target:
            candidate = self._best_candidate()
            if candidate is None:
                candidate = self._best_bridge(value)
            if candidate is None:
                break
            self._active.add(candidate)
            self._engine.add_broker(candidate)
            self.added.append(candidate)
            added.append(candidate)
            budget -= 1
            value = self.connectivity()
        record = RepairRecord(
            step=step,
            before=before,
            after=value,
            added=tuple(added),
            healed=value >= self.sla_target,
        )
        self.repairs.append(record)
        return record

    def _best_candidate(self) -> int | None:
        """Delegates to :func:`best_coverage_candidate`; crashed brokers
        are not eligible — they are down, not for hire."""
        return best_coverage_candidate(
            self._engine, excluded=self._active | self._down
        )

    def _best_bridge(self, current: float, *, probe_limit: int = 20) -> int | None:
        """Delegates to :func:`best_bridge_candidate` over non-brokers."""
        return best_bridge_candidate(
            self._engine,
            excluded=self._active | self._down,
            current=current,
            probe_limit=probe_limit,
        )
