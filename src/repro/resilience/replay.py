"""Deterministic replay of a fault schedule through the self-healer.

``replay_schedule`` is the resilience experiment loop: step the clock,
apply the step's faults, measure the degraded connectivity, let the SLA
monitor repair, and record everything.  Because the schedule is a frozen
event stream and the healer consults no RNG, two replays of the same
schedule produce bit-identical :class:`ResilienceReport` objects — the
property the determinism tests pin down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.exceptions import AlgorithmError, ResilienceError
from repro.graph.asgraph import ASGraph
from repro.obs import add_counter, get_tracer, profiled
from repro.resilience.faults import FaultSchedule
from repro.resilience.healing import RepairRecord, SelfHealingBrokerSet, SlaPolicy


@dataclass(frozen=True)
class StepRecord:
    """Connectivity trajectory at one step of the replay."""

    step: int
    faults: int
    degraded: float  # after this step's faults, before any repair
    healed: float    # after the SLA repair (== degraded when none ran)
    added: tuple[int, ...]


@dataclass(frozen=True)
class ResilienceReport:
    """Full trajectory of one fault campaign + repair loop."""

    description: str
    baseline: float
    sla_target: float
    steps: tuple[StepRecord, ...]
    repairs: tuple[RepairRecord, ...]
    final_brokers: tuple[int, ...]

    # ------------------------------------------------------------------
    # Summary metrics
    # ------------------------------------------------------------------
    @property
    def min_degraded(self) -> float:
        return min((s.degraded for s in self.steps), default=self.baseline)

    @property
    def final_connectivity(self) -> float:
        return self.steps[-1].healed if self.steps else self.baseline

    @property
    def total_added(self) -> int:
        return sum(len(s.added) for s in self.steps)

    def recovery_times(self) -> list[int]:
        """Steps spent below the SLA target per violation episode.

        An episode opens when the *healed* connectivity of a step ends
        below the SLA target and closes at the first step back at/above
        it; a violation repaired within its own step counts as 0 (the
        repair restored the SLA before the step closed).
        """
        times: list[int] = []
        open_since: int | None = None
        for record in self.steps:
            below = record.healed < self.sla_target
            if below and open_since is None:
                open_since = record.step
            elif not below and open_since is not None:
                times.append(record.step - open_since)
                open_since = None
        if open_since is not None:
            times.append(self.steps[-1].step - open_since + 1)
        return times

    def as_rows(self) -> list[tuple]:
        """Table rows (step, faults, degraded, healed, recruits)."""
        return [
            (
                s.step,
                s.faults,
                f"{100 * s.degraded:.2f}%",
                f"{100 * s.healed:.2f}%",
                ",".join(str(b) for b in s.added) or "-",
            )
            for s in self.steps
        ]

    def summary(self) -> str:
        recovery = self.recovery_times()
        return (
            f"baseline {100 * self.baseline:.2f}%, "
            f"SLA {100 * self.sla_target:.2f}%, "
            f"min degraded {100 * self.min_degraded:.2f}%, "
            f"final {100 * self.final_connectivity:.2f}%, "
            f"{len(self.repairs)} repairs adding {self.total_added} brokers, "
            f"recovery steps {recovery if recovery else '[]'}"
        )


@profiled("resilience.replay")
def replay_schedule(
    graph: ASGraph,
    brokers: list[int],
    schedule: FaultSchedule,
    *,
    policy: SlaPolicy | None = None,
    heal: bool = True,
    verify_every: int = 0,
) -> ResilienceReport:
    """Run ``schedule`` against ``brokers`` and record the trajectory.

    ``heal=False`` replays the raw degradation (the no-insurance curve
    the paper's Section 7.2 worries about); ``heal=True`` lets the SLA
    monitor recruit repairs after each step's faults.

    ``verify_every=k`` cross-checks the healer's incrementally
    maintained :class:`~repro.core.engine.DominationEngine` against a
    from-scratch recomputation every ``k`` steps (and once more after
    the final step).  Divergence raises a structured
    :class:`~repro.exceptions.ResilienceError` carrying the step index
    and the engine's drift diagnosis — never a bare assertion.
    """
    if verify_every < 0:
        raise AlgorithmError(f"verify_every must be >= 0, got {verify_every}")
    tracer = get_tracer()
    healer = SelfHealingBrokerSet(graph, brokers, policy=policy)

    def _verify(step: int) -> None:
        try:
            healer.engine.verify()
        except AlgorithmError as exc:
            raise ResilienceError(
                "incremental replay state diverged from recomputation",
                step=step,
                details=str(exc),
            ) from exc

    steps: list[StepRecord] = []
    faults_applied = 0
    repairs = 0
    for step in range(1, schedule.num_steps + 1):
        with tracer.span("resilience.step", step=step) as span:
            events = schedule.at(step)
            for event in events:
                healer.apply(event)
            degraded = healer.connectivity()
            record = None
            if heal:
                record = healer.maybe_repair(step, current=degraded)
            healed = record.after if record is not None else degraded
            faults_applied += len(events)
            if record is not None:
                repairs += 1
            if verify_every and step % verify_every == 0:
                _verify(step)
            span.set(faults=len(events), degraded=degraded, healed=healed)
        steps.append(
            StepRecord(
                step=step,
                faults=len(events),
                degraded=degraded,
                healed=healed,
                added=record.added if record is not None else (),
            )
        )
    if verify_every and schedule.num_steps % verify_every != 0:
        _verify(schedule.num_steps)
    add_counter("resilience.steps", schedule.num_steps)
    add_counter("resilience.faults_applied", faults_applied)
    add_counter("resilience.repairs", repairs)
    return ResilienceReport(
        description=schedule.description,
        baseline=healer.baseline,
        sla_target=healer.sla_target,
        steps=tuple(steps),
        repairs=tuple(healer.repairs),
        final_brokers=tuple(healer.active_brokers),
    )


# ----------------------------------------------------------------------
# Serialization (result-cache entries are JSON)
# ----------------------------------------------------------------------

def report_to_dict(report: ResilienceReport) -> dict:
    """JSON-safe form of a :class:`ResilienceReport` (lossless)."""
    return {
        "description": report.description,
        "baseline": report.baseline,
        "sla_target": report.sla_target,
        "steps": [
            {
                "step": s.step,
                "faults": s.faults,
                "degraded": s.degraded,
                "healed": s.healed,
                "added": list(s.added),
            }
            for s in report.steps
        ],
        "repairs": [
            {
                "step": r.step,
                "before": r.before,
                "after": r.after,
                "added": list(r.added),
                "healed": r.healed,
            }
            for r in report.repairs
        ],
        "final_brokers": list(report.final_brokers),
    }


def report_from_dict(data: dict) -> ResilienceReport:
    """Inverse of :func:`report_to_dict`."""
    return ResilienceReport(
        description=str(data["description"]),
        baseline=float(data["baseline"]),
        sla_target=float(data["sla_target"]),
        steps=tuple(
            StepRecord(
                step=int(s["step"]),
                faults=int(s["faults"]),
                degraded=float(s["degraded"]),
                healed=float(s["healed"]),
                added=tuple(int(b) for b in s["added"]),
            )
            for s in data["steps"]
        ),
        repairs=tuple(
            RepairRecord(
                step=int(r["step"]),
                before=float(r["before"]),
                after=float(r["after"]),
                added=tuple(int(b) for b in r["added"]),
                healed=bool(r["healed"]),
            )
            for r in data["repairs"]
        ),
        final_brokers=tuple(int(b) for b in data["final_brokers"]),
    )


def schedule_cache_params(schedule: FaultSchedule) -> dict:
    """Canonical JSON-safe identity of a fault schedule (cache key part)."""
    return {
        "num_steps": schedule.num_steps,
        "description": schedule.description,
        "events": [
            [
                e.step,
                e.kind.value,
                -1 if e.node is None else int(e.node),
                list(e.endpoints) if e.endpoints is not None else [-1, -1],
                e.cause,
            ]
            for e in schedule.events
        ],
    }


# ----------------------------------------------------------------------
# Parallel, cache-aware replay sweeps
# ----------------------------------------------------------------------

#: Cache tag for one replayed schedule.
REPLAY_CELL_TAG = "resilience-replay"


def _replay_cell(task: dict) -> dict:
    """Replay one schedule against the worker's shared graph."""
    from repro.experiments.sweeps import worker_graph

    report = replay_schedule(
        worker_graph(),
        task["brokers"],
        task["schedule"],
        policy=task["policy"],
        heal=task["heal"],
    )
    return report_to_dict(report)


@dataclass(frozen=True)
class ReplaySweep:
    """Outcome of :func:`replay_many`.

    ``reports`` are full :class:`ResilienceReport` objects (inflated
    from the deterministic JSON cells in ``payload``); the cache
    counters describe this invocation only and are not in the payload.
    """

    reports: tuple[ResilienceReport, ...]
    payload: dict
    cache_hits: int = 0
    cache_misses: int = 0


def replay_many(
    graph: ASGraph,
    brokers: list[int],
    schedules: list[FaultSchedule],
    *,
    policy: SlaPolicy | None = None,
    heal: bool = True,
    workers: int = 1,
    backend: str = "serial",
    cache_dir: str | Path | None = None,
    chunk_size: int | None = None,
) -> ReplaySweep:
    """Replay many fault campaigns over one shared topology.

    Each schedule's replay is independent — the embarrassingly parallel
    shape of a multi-seed resilience sweep — so replays are dispatched
    through :func:`repro.experiments.sweeps.run_graph_tasks` (shared-
    memory graph under the process backend) and cached content-addressed
    by graph digest + brokers + policy + the schedule's canonical event
    stream.  Because :func:`replay_schedule` is deterministic, cached
    and recomputed cells are bit-identical.
    """
    from repro.experiments.sweeps import jsonify_cell, run_graph_tasks
    from repro.parallel.cache import ResultCache

    policy = policy if policy is not None else SlaPolicy()
    brokers = [int(b) for b in brokers]
    digest = graph.digest()
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    policy_params = {
        "threshold": policy.threshold,
        "repair_budget": policy.repair_budget,
        "max_total_added": policy.max_total_added,
    }

    cells: dict[int, dict] = {}
    tasks: list[dict] = []
    for index, schedule in enumerate(schedules):
        params = {
            "brokers": brokers,
            "policy": policy_params,
            "heal": heal,
            "schedule": schedule_cache_params(schedule),
        }
        if cache is not None:
            hit = cache.get(
                graph_digest=digest, algorithm=REPLAY_CELL_TAG, params=params
            )
            if hit is not None:
                cells[index] = hit
                continue
        tasks.append(
            {
                "index": index,
                "schedule": schedule,
                "brokers": brokers,
                "policy": policy,
                "heal": heal,
                "params": params,
            }
        )
    computed = run_graph_tasks(
        graph,
        _replay_cell,
        tasks,
        backend=backend,
        workers=workers,
        chunk_size=chunk_size,
    ).values()
    for task, cell in zip(tasks, computed):
        if cache is not None:
            cell = cache.put(
                cell,
                graph_digest=digest,
                algorithm=REPLAY_CELL_TAG,
                params=task["params"],
            )
        else:
            cell = jsonify_cell(cell)
        cells[task["index"]] = cell

    ordered = [cells[i] for i in range(len(schedules))]
    payload = {
        "sweep": "resilience-replay",
        "graph_digest": digest,
        "brokers": brokers,
        "heal": heal,
        "policy": policy_params,
        "num_schedules": len(schedules),
        "cells": ordered,
    }
    return ReplaySweep(
        reports=tuple(report_from_dict(c) for c in ordered),
        payload=payload,
        cache_hits=cache.hits if cache is not None else 0,
        cache_misses=cache.misses if cache is not None else 0,
    )
