"""Deterministic replay of a fault schedule through the self-healer.

``replay_schedule`` is the resilience experiment loop: step the clock,
apply the step's faults, measure the degraded connectivity, let the SLA
monitor repair, and record everything.  Because the schedule is a frozen
event stream and the healer consults no RNG, two replays of the same
schedule produce bit-identical :class:`ResilienceReport` objects — the
property the determinism tests pin down.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.graph.asgraph import ASGraph
from repro.resilience.faults import FaultSchedule
from repro.resilience.healing import RepairRecord, SelfHealingBrokerSet, SlaPolicy


@dataclass(frozen=True)
class StepRecord:
    """Connectivity trajectory at one step of the replay."""

    step: int
    faults: int
    degraded: float  # after this step's faults, before any repair
    healed: float    # after the SLA repair (== degraded when none ran)
    added: tuple[int, ...]


@dataclass(frozen=True)
class ResilienceReport:
    """Full trajectory of one fault campaign + repair loop."""

    description: str
    baseline: float
    sla_target: float
    steps: tuple[StepRecord, ...]
    repairs: tuple[RepairRecord, ...]
    final_brokers: tuple[int, ...]

    # ------------------------------------------------------------------
    # Summary metrics
    # ------------------------------------------------------------------
    @property
    def min_degraded(self) -> float:
        return min((s.degraded for s in self.steps), default=self.baseline)

    @property
    def final_connectivity(self) -> float:
        return self.steps[-1].healed if self.steps else self.baseline

    @property
    def total_added(self) -> int:
        return sum(len(s.added) for s in self.steps)

    def recovery_times(self) -> list[int]:
        """Steps spent below the SLA target per violation episode.

        An episode opens when the *healed* connectivity of a step ends
        below the SLA target and closes at the first step back at/above
        it; a violation repaired within its own step counts as 0 (the
        repair restored the SLA before the step closed).
        """
        times: list[int] = []
        open_since: int | None = None
        for record in self.steps:
            below = record.healed < self.sla_target
            if below and open_since is None:
                open_since = record.step
            elif not below and open_since is not None:
                times.append(record.step - open_since)
                open_since = None
        if open_since is not None:
            times.append(self.steps[-1].step - open_since + 1)
        return times

    def as_rows(self) -> list[tuple]:
        """Table rows (step, faults, degraded, healed, recruits)."""
        return [
            (
                s.step,
                s.faults,
                f"{100 * s.degraded:.2f}%",
                f"{100 * s.healed:.2f}%",
                ",".join(str(b) for b in s.added) or "-",
            )
            for s in self.steps
        ]

    def summary(self) -> str:
        recovery = self.recovery_times()
        return (
            f"baseline {100 * self.baseline:.2f}%, "
            f"SLA {100 * self.sla_target:.2f}%, "
            f"min degraded {100 * self.min_degraded:.2f}%, "
            f"final {100 * self.final_connectivity:.2f}%, "
            f"{len(self.repairs)} repairs adding {self.total_added} brokers, "
            f"recovery steps {recovery if recovery else '[]'}"
        )


def replay_schedule(
    graph: ASGraph,
    brokers: list[int],
    schedule: FaultSchedule,
    *,
    policy: SlaPolicy | None = None,
    heal: bool = True,
) -> ResilienceReport:
    """Run ``schedule`` against ``brokers`` and record the trajectory.

    ``heal=False`` replays the raw degradation (the no-insurance curve
    the paper's Section 7.2 worries about); ``heal=True`` lets the SLA
    monitor recruit repairs after each step's faults.
    """
    healer = SelfHealingBrokerSet(graph, brokers, policy=policy)
    steps: list[StepRecord] = []
    for step in range(1, schedule.num_steps + 1):
        events = schedule.at(step)
        for event in events:
            healer.apply(event)
        degraded = healer.connectivity()
        record = None
        if heal:
            record = healer.maybe_repair(step, current=degraded)
        healed = record.after if record is not None else degraded
        steps.append(
            StepRecord(
                step=step,
                faults=len(events),
                degraded=degraded,
                healed=healed,
                added=record.added if record is not None else (),
            )
        )
    return ResilienceReport(
        description=schedule.description,
        baseline=healer.baseline,
        sla_target=healer.sla_target,
        steps=tuple(steps),
        repairs=tuple(healer.repairs),
        final_brokers=tuple(healer.active_brokers),
    )
