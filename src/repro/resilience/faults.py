"""Deterministic fault injection — the failure side of resilience.

A :class:`FaultSchedule` is a seeded, replayable stream of
:class:`FaultEvent` deltas over discrete time steps, the failure-domain
sibling of :class:`repro.simulation.churn.ChurnTrace`.  Where churn
models the Internet's organic evolution, a fault schedule models the
things that go *wrong* with the coalition itself (Section 7.2's
stability concerns, and the partial-failure scenarios centralized
inter-domain schemes must survive):

* :func:`independent_crashes` — memoryless broker outages;
* :func:`targeted_removals` — an adversary (or the biggest members
  defecting) removing brokers in descending marginal coverage
  contribution;
* :func:`regional_outage` — a correlated failure taking down every
  broker within a graph-neighbourhood radius of an epicenter;
* :func:`link_cut_campaign` — inter-AS links being cut over time;
* :func:`flapping_brokers` — brokers that crash and recover cyclically;
* :func:`compose` — overlay any of the above into one campaign.

All generators are pure functions of their arguments: the same seed
yields a bit-identical schedule, so an entire degradation/repair
trajectory can be replayed exactly (see :mod:`repro.resilience.replay`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.core.robustness import coverage_contribution_order
from repro.exceptions import AlgorithmError
from repro.graph.asgraph import ASGraph
from repro.graph.csr import UNREACHABLE, bfs_levels
from repro.utils.rng import SeedLike, ensure_rng


class FaultKind(enum.Enum):
    BROKER_DOWN = "broker-down"
    BROKER_UP = "broker-up"
    LINK_CUT = "link-cut"


@dataclass(frozen=True)
class FaultEvent:
    """One fault delta.

    ``node`` is set for broker crashes/recoveries, ``endpoints`` for link
    cuts; ``cause`` records which fault model emitted the event (useful
    when schedules are composed).
    """

    step: int
    kind: FaultKind
    node: int | None = None
    endpoints: tuple[int, int] | None = None
    cause: str = ""


#: Application order of co-occurring kinds within one step.  Explicit so
#: the replay semantics cannot silently change if an enum value is ever
#: renamed: crashes land first, recoveries second, link cuts last.  (The
#: numeric order matches the historical lexicographic sort of the enum
#: values, so existing schedules replay bit-identically.)
_KIND_ORDER: dict[FaultKind, int] = {
    FaultKind.BROKER_DOWN: 0,
    FaultKind.BROKER_UP: 1,
    FaultKind.LINK_CUT: 2,
}


def _event_key(event: FaultEvent) -> tuple:
    """The total deterministic order of events on a shared clock.

    ``(step, kind priority, node, endpoints, cause)`` — every field of
    the event participates, so the sort key is total: two events compare
    equal only if they *are* equal.  Composition order of the source
    schedules therefore never leaks into replay order; see
    :func:`compose`.
    """
    return (
        event.step,
        _KIND_ORDER[event.kind],
        -1 if event.node is None else event.node,
        event.endpoints or (-1, -1),
        event.cause,
    )


@dataclass(frozen=True)
class FaultSchedule:
    """A replayable fault campaign over steps ``1..num_steps``.

    Events are kept sorted under the total order ``(step, kind, node,
    endpoints, cause)`` — see :func:`_event_key` — so iteration, and
    therefore every replay, is deterministic regardless of how the
    schedule was assembled or composed.  Build instances through the
    generator functions or :meth:`from_events`.
    """

    num_steps: int
    events: tuple[FaultEvent, ...]
    description: str = ""

    @classmethod
    def from_events(
        cls, num_steps: int, events: list[FaultEvent] | tuple[FaultEvent, ...],
        description: str = "",
    ) -> "FaultSchedule":
        if num_steps < 0:
            raise AlgorithmError(f"num_steps must be >= 0, got {num_steps}")
        ordered = tuple(sorted(events, key=_event_key))
        for e in ordered:
            if not 0 <= e.step <= num_steps:
                raise AlgorithmError(
                    f"event step {e.step} outside schedule horizon {num_steps}"
                )
        return cls(num_steps=num_steps, events=ordered, description=description)

    def at(self, step: int) -> tuple[FaultEvent, ...]:
        """All events firing at ``step`` (already deterministically ordered)."""
        return tuple(e for e in self.events if e.step == step)

    def merge(self, other: "FaultSchedule") -> "FaultSchedule":
        """Overlay two schedules on a shared clock."""
        description = " + ".join(d for d in (self.description, other.description) if d)
        return FaultSchedule.from_events(
            max(self.num_steps, other.num_steps),
            list(self.events) + list(other.events),
            description=description,
        )

    def __len__(self) -> int:
        return len(self.events)


def compose(*schedules: FaultSchedule, description: str = "") -> FaultSchedule:
    """Overlay any number of schedules into one campaign.

    Same-step events from different schedules are interleaved under the
    total deterministic order ``(step, kind, node, endpoints, cause)``
    with kinds applying as crash < recovery < link-cut — so
    ``compose(a, b)`` and ``compose(b, a)`` yield the same event stream
    (only the joined ``description`` reflects argument order), and a
    composed campaign replays identically no matter how it was
    assembled.
    """
    if not schedules:
        raise AlgorithmError("compose requires at least one schedule")
    merged = schedules[0]
    for sched in schedules[1:]:
        merged = merged.merge(sched)
    if description:
        merged = FaultSchedule.from_events(
            merged.num_steps, list(merged.events), description=description
        )
    return merged


def _clean_brokers(brokers: list[int]) -> list[int]:
    cleaned = sorted(dict.fromkeys(int(b) for b in brokers))
    if not cleaned:
        raise AlgorithmError("broker set must be non-empty")
    return cleaned


def independent_crashes(
    brokers: list[int],
    *,
    num_steps: int,
    crash_prob: float,
    seed: SeedLike = 0,
) -> FaultSchedule:
    """Memoryless outages: each alive broker crashes w.p. ``crash_prob``/step."""
    if not 0.0 <= crash_prob <= 1.0:
        raise AlgorithmError(f"crash_prob must be in [0, 1], got {crash_prob}")
    alive = _clean_brokers(brokers)
    rng = ensure_rng(seed)
    events: list[FaultEvent] = []
    for step in range(1, num_steps + 1):
        if not alive:
            break
        draws = rng.random(len(alive))
        crashed = [b for b, r in zip(alive, draws) if r < crash_prob]
        for b in crashed:
            events.append(
                FaultEvent(step, FaultKind.BROKER_DOWN, node=b, cause="independent")
            )
        alive = [b for b in alive if b not in set(crashed)]
    return FaultSchedule.from_events(num_steps, events, description="independent")


def targeted_removals(
    graph: ASGraph,
    brokers: list[int],
    *,
    count: int,
    start_step: int = 1,
    spacing: int = 1,
) -> FaultSchedule:
    """Adversarial removals in descending marginal coverage contribution.

    One broker falls every ``spacing`` steps starting at ``start_step``;
    the order is the deterministic hit list of
    :func:`repro.core.robustness.coverage_contribution_order`.
    """
    cleaned = _clean_brokers(brokers)
    if count < 1 or count > len(cleaned):
        raise AlgorithmError(f"count {count} out of range 1..{len(cleaned)}")
    if start_step < 1 or spacing < 1:
        raise AlgorithmError("start_step and spacing must be >= 1")
    order = coverage_contribution_order(graph, cleaned)[:count]
    events = [
        FaultEvent(start_step + i * spacing, FaultKind.BROKER_DOWN, node=b,
                   cause="targeted")
        for i, b in enumerate(order)
    ]
    return FaultSchedule.from_events(
        start_step + (count - 1) * spacing, events, description="targeted"
    )


def regional_outage(
    graph: ASGraph,
    brokers: list[int],
    *,
    radius: int = 1,
    step: int = 1,
    epicenter: int | None = None,
    seed: SeedLike = 0,
) -> FaultSchedule:
    """Correlated outage: every broker within ``radius`` hops of an epicenter.

    Models a regional event (power, submarine cable, natural disaster)
    taking out co-located coalition members at once.  The epicenter
    defaults to a uniformly drawn broker.
    """
    cleaned = _clean_brokers(brokers)
    if radius < 0:
        raise AlgorithmError(f"radius must be >= 0, got {radius}")
    if step < 1:
        raise AlgorithmError(f"step must be >= 1, got {step}")
    if epicenter is None:
        rng = ensure_rng(seed)
        epicenter = cleaned[int(rng.integers(len(cleaned)))]
    if not 0 <= epicenter < graph.num_nodes:
        raise AlgorithmError(f"epicenter {epicenter} out of range")
    dist = bfs_levels(graph.adj, int(epicenter))
    victims = [
        b for b in cleaned if dist[b] != UNREACHABLE and int(dist[b]) <= radius
    ]
    events = [
        FaultEvent(step, FaultKind.BROKER_DOWN, node=b, cause="regional")
        for b in victims
    ]
    return FaultSchedule.from_events(step, events, description="regional")


def link_cut_campaign(
    graph: ASGraph,
    *,
    num_steps: int,
    cuts_per_step: int,
    seed: SeedLike = 0,
    brokers: list[int] | None = None,
) -> FaultSchedule:
    """Cut ``cuts_per_step`` distinct links per step, sampled uniformly.

    When ``brokers`` is given the campaign only cuts broker-incident
    links — the edges that actually carry the dominated graph, i.e. the
    most damaging cuts an adversary could make.
    """
    if cuts_per_step < 1:
        raise AlgorithmError(f"cuts_per_step must be >= 1, got {cuts_per_step}")
    src, dst = graph.edge_src, graph.edge_dst
    if brokers is not None:
        mask = np.zeros(graph.num_nodes, dtype=bool)
        mask[_clean_brokers(brokers)] = True
        candidates = np.flatnonzero(mask[src] | mask[dst])
    else:
        candidates = np.arange(graph.num_edges)
    if candidates.size == 0:
        return FaultSchedule.from_events(num_steps, [], description="link-cut")
    total = min(num_steps * cuts_per_step, int(candidates.size))
    rng = ensure_rng(seed)
    chosen = rng.choice(candidates, size=total, replace=False)
    events = [
        FaultEvent(
            1 + i // cuts_per_step,
            FaultKind.LINK_CUT,
            endpoints=(int(src[e]), int(dst[e])),
            cause="link-cut",
        )
        for i, e in enumerate(chosen)
    ]
    return FaultSchedule.from_events(num_steps, events, description="link-cut")


def flapping_brokers(
    brokers: list[int],
    *,
    num_steps: int,
    num_flappers: int = 1,
    down_for: int = 1,
    up_for: int | None = None,
    seed: SeedLike = 0,
) -> FaultSchedule:
    """Brokers that crash and recover cyclically (the BGP-flap analogue).

    Each flapper gets a seeded phase offset; from its phase on it repeats
    ``down_for`` steps down, then ``up_for`` (default ``down_for``) steps
    up, until the horizon.  Exercises the self-healer's behaviour when
    capacity keeps coming back.
    """
    cleaned = _clean_brokers(brokers)
    if down_for < 1:
        raise AlgorithmError(f"down_for must be >= 1, got {down_for}")
    up = down_for if up_for is None else up_for
    if up < 1:
        raise AlgorithmError(f"up_for must be >= 1, got {up}")
    if num_flappers < 1 or num_flappers > len(cleaned):
        raise AlgorithmError(
            f"num_flappers {num_flappers} out of range 1..{len(cleaned)}"
        )
    rng = ensure_rng(seed)
    flappers = sorted(
        int(b) for b in rng.choice(cleaned, size=num_flappers, replace=False)
    )
    cycle = down_for + up
    events: list[FaultEvent] = []
    for b in flappers:
        phase = int(rng.integers(1, cycle + 1))
        t = phase
        while t <= num_steps:
            events.append(FaultEvent(t, FaultKind.BROKER_DOWN, node=b,
                                     cause="flapping"))
            if t + down_for <= num_steps:
                events.append(FaultEvent(t + down_for, FaultKind.BROKER_UP,
                                         node=b, cause="flapping"))
            t += cycle
    return FaultSchedule.from_events(num_steps, events, description="flapping")
