"""Fault injection, SLA self-healing and deterministic resilience replay.

The failure-domain counterpart of :mod:`repro.simulation`: seeded fault
schedules (broker crashes, adversarial removals, regional outages, link
cuts, flapping), a budgeted SLA-driven repair loop, and a replay engine
producing degradation/recovery reports.
"""

from repro.resilience.faults import (
    FaultEvent,
    FaultKind,
    FaultSchedule,
    compose,
    flapping_brokers,
    independent_crashes,
    link_cut_campaign,
    regional_outage,
    targeted_removals,
)
from repro.resilience.healing import (
    RepairRecord,
    SelfHealingBrokerSet,
    SlaPolicy,
    best_bridge_candidate,
    best_coverage_candidate,
)
from repro.resilience.replay import (
    ReplaySweep,
    ResilienceReport,
    StepRecord,
    replay_many,
    replay_schedule,
    report_from_dict,
    report_to_dict,
    schedule_cache_params,
)

__all__ = [
    "FaultEvent",
    "FaultKind",
    "FaultSchedule",
    "compose",
    "independent_crashes",
    "targeted_removals",
    "regional_outage",
    "link_cut_campaign",
    "flapping_brokers",
    "SlaPolicy",
    "RepairRecord",
    "SelfHealingBrokerSet",
    "best_bridge_candidate",
    "best_coverage_candidate",
    "ReplaySweep",
    "ResilienceReport",
    "StepRecord",
    "replay_many",
    "replay_schedule",
    "report_from_dict",
    "report_to_dict",
    "schedule_cache_params",
]
