"""Topology churn and incremental broker-set maintenance.

The Internet the coalition serves is not static: ~4-6 % of ASes appear
or disappear per year and peering links churn continuously.  A broker
set selected once decays; re-running selection from scratch on every
BGP update is the non-starter the paper's centralized design avoids.
This module provides the dynamic machinery:

* :func:`generate_churn_trace` — a reproducible stream of topology
  deltas (stub AS arrivals with providers, AS departures, peering link
  births/deaths) consistent with the generator's structural model;
* :class:`IncrementalBrokerSet` — maintains a broker set under that
  stream: applies deltas to a mutable topology view, tracks the covered
  set incrementally, and *patches* the broker set (greedy, budgeted)
  when coverage drops below a target — the repair is O(affected
  neighbourhood), not O(graph).

The invariant tests assert that the incrementally maintained coverage
always equals a from-scratch recomputation on the current topology.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.exceptions import AlgorithmError
from repro.graph.asgraph import ASGraph
from repro.types import NodeKind
from repro.utils.rng import SeedLike, ensure_rng


class ChurnKind(enum.Enum):
    AS_ARRIVAL = "as-arrival"
    AS_DEPARTURE = "as-departure"
    LINK_UP = "link-up"
    LINK_DOWN = "link-down"


@dataclass(frozen=True)
class ChurnEvent:
    """One topology delta.

    ``node`` is set for arrivals/departures; ``endpoints`` for link
    events.  Arrivals carry the new AS's chosen neighbours.
    """

    kind: ChurnKind
    node: int | None = None
    endpoints: tuple[int, int] | None = None
    neighbors: tuple[int, ...] = ()


@dataclass(frozen=True)
class ChurnTrace:
    """A reproducible event stream over a base topology."""

    base: ASGraph
    events: list[ChurnEvent]


def generate_churn_trace(
    graph: ASGraph,
    *,
    num_events: int = 200,
    arrival_fraction: float = 0.3,
    departure_fraction: float = 0.2,
    link_up_fraction: float = 0.3,
    seed: SeedLike = 0,
) -> ChurnTrace:
    """Sample a plausible churn stream.

    Arrivals are stub ASes buying from 1-2 existing transit-ish nodes
    (degree-preferential); departures remove random low-degree stubs
    (hubs do not vanish overnight); link events toggle peering edges.
    Fractions must sum to <= 1; the remainder are LINK_DOWN events.
    """
    total = arrival_fraction + departure_fraction + link_up_fraction
    if total > 1.0 + 1e-9:
        raise AlgorithmError("event fractions must sum to <= 1")
    rng = ensure_rng(seed)
    n = graph.num_nodes
    degrees = graph.degrees().astype(np.float64)
    events: list[ChurnEvent] = []
    next_node = n
    active = set(range(n))
    draws = rng.random(num_events)
    for i in range(num_events):
        r = draws[i]
        if r < arrival_fraction:
            count = int(rng.integers(1, 3))
            pool = np.fromiter(active, dtype=np.int64)
            weights = degrees[pool % n] + 1.0
            weights /= weights.sum()
            neighbors = tuple(
                int(x) for x in rng.choice(pool, size=min(count, len(pool)),
                                           replace=False, p=weights)
            )
            events.append(
                ChurnEvent(ChurnKind.AS_ARRIVAL, node=next_node, neighbors=neighbors)
            )
            active.add(next_node)
            next_node += 1
        elif r < arrival_fraction + departure_fraction:
            # Remove a low-degree original stub that is still active.
            stubs = [
                v for v in active
                if v < n and degrees[v] <= 3 and graph.kinds[v] == int(NodeKind.AS)
            ]
            if not stubs:
                continue
            victim = int(stubs[int(rng.integers(len(stubs)))])
            active.discard(victim)
            events.append(ChurnEvent(ChurnKind.AS_DEPARTURE, node=victim))
        elif r < total:
            pool = np.fromiter(active, dtype=np.int64)
            u, v = rng.choice(pool, size=2, replace=False)
            events.append(
                ChurnEvent(ChurnKind.LINK_UP, endpoints=(int(u), int(v)))
            )
        else:
            if graph.num_edges == 0:
                continue
            e = int(rng.integers(graph.num_edges))
            events.append(
                ChurnEvent(
                    ChurnKind.LINK_DOWN,
                    endpoints=(int(graph.edge_src[e]), int(graph.edge_dst[e])),
                )
            )
    return ChurnTrace(base=graph, events=events)


class MutableTopology:
    """Adjacency-set view of an ASGraph that absorbs topology deltas.

    Shared by the churn maintainer below and by the fault-injection
    self-healing loop (:mod:`repro.resilience.healing`): both need a
    cheap mutable adjacency with node/link add/remove and an ``alive``
    set, without rebuilding the immutable :class:`ASGraph`.
    """

    def __init__(self, graph: ASGraph) -> None:
        self.adjacency: dict[int, set[int]] = {
            v: set(int(x) for x in graph.neighbors(v)) for v in range(graph.num_nodes)
        }
        self.alive: set[int] = set(range(graph.num_nodes))

    def add_node(self, node: int, neighbors: tuple[int, ...]) -> None:
        self.adjacency.setdefault(node, set())
        self.alive.add(node)
        for u in neighbors:
            if u in self.alive and u != node:
                self.adjacency[node].add(u)
                self.adjacency.setdefault(u, set()).add(node)

    def remove_node(self, node: int) -> set[int]:
        """Remove and return the ex-neighbours (they may lose coverage)."""
        if node not in self.alive:
            return set()
        self.alive.discard(node)
        neighbors = self.adjacency.pop(node, set())
        for u in neighbors:
            self.adjacency.get(u, set()).discard(node)
        return neighbors

    def add_link(self, u: int, v: int) -> bool:
        if u == v or u not in self.alive or v not in self.alive:
            return False
        if v in self.adjacency[u]:
            return False
        self.adjacency[u].add(v)
        self.adjacency[v].add(u)
        return True

    def remove_link(self, u: int, v: int) -> bool:
        if u not in self.alive or v not in self.alive:
            return False
        if v not in self.adjacency.get(u, set()):
            return False
        self.adjacency[u].discard(v)
        self.adjacency[v].discard(u)
        return True


@dataclass
class RepairStats:
    """Bookkeeping of the maintenance loop."""

    events_applied: int = 0
    repairs_triggered: int = 0
    brokers_added: int = 0
    brokers_retired: int = 0


class IncrementalBrokerSet:
    """Maintains broker coverage under topology churn.

    ``coverage_target`` is the fraction of live vertices that must stay
    covered; when churn pushes coverage below it, the maintainer adds the
    highest-gain candidates adjacent to the covered region (the MaxSG
    rule) until the target holds or ``max_brokers`` is reached.  Brokers
    that depart the topology are retired automatically.
    """

    def __init__(
        self,
        graph: ASGraph,
        brokers: list[int],
        *,
        coverage_target: float = 0.9,
        max_brokers: int | None = None,
    ) -> None:
        if not 0.0 < coverage_target <= 1.0:
            raise AlgorithmError("coverage_target must be in (0, 1]")
        self._topo = MutableTopology(graph)
        self._brokers = set(int(b) for b in brokers)
        if not self._brokers:
            raise AlgorithmError("broker set must be non-empty")
        self._target = coverage_target
        self._max_brokers = max_brokers if max_brokers is not None else len(
            self._brokers
        ) * 2
        self.stats = RepairStats()

    # ------------------------------------------------------------------
    # State inspection
    # ------------------------------------------------------------------
    @property
    def brokers(self) -> list[int]:
        return sorted(self._brokers)

    def covered_set(self) -> set[int]:
        covered: set[int] = set()
        for b in self._brokers:
            if b in self._topo.alive:
                covered.add(b)
                covered |= self._topo.adjacency.get(b, set())
        return covered & self._topo.alive

    def coverage_fraction(self) -> float:
        alive = len(self._topo.alive)
        return len(self.covered_set()) / alive if alive else 0.0

    # ------------------------------------------------------------------
    # Event application
    # ------------------------------------------------------------------
    def apply(self, event: ChurnEvent) -> None:
        """Absorb one delta, retiring/repairing brokers as needed."""
        if event.kind is ChurnKind.AS_ARRIVAL:
            assert event.node is not None
            self._topo.add_node(event.node, event.neighbors)
        elif event.kind is ChurnKind.AS_DEPARTURE:
            assert event.node is not None
            self._topo.remove_node(event.node)
            if event.node in self._brokers:
                self._brokers.discard(event.node)
                self.stats.brokers_retired += 1
        elif event.kind is ChurnKind.LINK_UP:
            assert event.endpoints is not None
            self._topo.add_link(*event.endpoints)
        elif event.kind is ChurnKind.LINK_DOWN:
            assert event.endpoints is not None
            self._topo.remove_link(*event.endpoints)
        self.stats.events_applied += 1
        if self.coverage_fraction() < self._target:
            self._repair()

    def run(self, trace: ChurnTrace) -> RepairStats:
        """Apply a whole trace; returns the accumulated statistics."""
        for event in trace.events:
            self.apply(event)
        return self.stats

    # ------------------------------------------------------------------
    # Repair
    # ------------------------------------------------------------------
    def _repair(self) -> None:
        """Greedy patching until the target holds (MaxSG rule).

        Candidates are vertices adjacent to the covered region (keeping
        the dominating-path invariant); each patch picks the candidate
        covering the most uncovered vertices.
        """
        self.stats.repairs_triggered += 1
        alive = self._topo.alive
        while (
            len(self._brokers) < self._max_brokers
            and self.coverage_fraction() < self._target
        ):
            covered = self.covered_set()
            uncovered = alive - covered
            if not uncovered:
                break
            # Candidate pool: covered vertices and their neighbours (the
            # connected-growth rule), falling back to uncovered hubs when
            # churn has detached whole regions.
            candidates: set[int] = set()
            for v in covered:
                candidates.add(v)
                candidates |= self._topo.adjacency.get(v, set())
            candidates -= self._brokers
            candidates &= alive
            if not candidates:
                candidates = uncovered
            best, best_gain = None, 0
            for c in candidates:
                closed = (self._topo.adjacency.get(c, set()) | {c}) & alive
                gain = len(closed - covered)
                if gain > best_gain:
                    best, best_gain = c, gain
            if best is None:
                break
            self._brokers.add(best)
            self.stats.brokers_added += 1

    # ------------------------------------------------------------------
    # Export for verification
    # ------------------------------------------------------------------
    def snapshot(self) -> ASGraph:
        """Materialize the current topology as an immutable ASGraph.

        Node ids are re-packed densely; used by tests to verify the
        incremental coverage against a from-scratch computation.
        """
        alive = sorted(self._topo.alive)
        index = {v: i for i, v in enumerate(alive)}
        edges = []
        for u in alive:
            for v in self._topo.adjacency.get(u, set()):
                if u < v and v in index:
                    edges.append((index[u], index[v]))
        return ASGraph.from_edges(len(alive), edges)

    def snapshot_brokers(self) -> list[int]:
        """Broker ids re-packed to match :meth:`snapshot`."""
        alive = sorted(self._topo.alive)
        index = {v: i for i, v in enumerate(alive)}
        return [index[b] for b in sorted(self._brokers) if b in index]
