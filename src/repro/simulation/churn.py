"""Topology churn and incremental broker-set maintenance.

The Internet the coalition serves is not static: ~4-6 % of ASes appear
or disappear per year and peering links churn continuously.  A broker
set selected once decays; re-running selection from scratch on every
BGP update is the non-starter the paper's centralized design avoids.
This module provides the dynamic machinery:

* :func:`generate_churn_trace` — a reproducible stream of topology
  deltas (stub AS arrivals with providers, AS departures, peering link
  births/deaths) consistent with the generator's structural model;
* :class:`IncrementalBrokerSet` — maintains a broker set under that
  stream: applies deltas to a :class:`repro.core.engine.DominationEngine`,
  tracks the covered set incrementally, and *patches* the broker set
  (greedy, budgeted) when coverage drops below a target — the repair is
  O(affected neighbourhood), not O(graph);
* :class:`IncrementalBrokerSetReference` — the from-scratch maintainer
  (recomputes the covered set per query) kept as the differential-testing
  oracle and the baseline the engine speedup benchmark measures against.

The invariant tests assert that the incrementally maintained coverage
always equals a from-scratch recomputation on the current topology.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.core.engine import DominationEngine
from repro.exceptions import AlgorithmError
from repro.graph.asgraph import ASGraph
from repro.types import NodeKind
from repro.utils.rng import SeedLike, ensure_rng


class ChurnKind(enum.Enum):
    AS_ARRIVAL = "as-arrival"
    AS_DEPARTURE = "as-departure"
    LINK_UP = "link-up"
    LINK_DOWN = "link-down"


@dataclass(frozen=True)
class ChurnEvent:
    """One topology delta.

    ``node`` is set for arrivals/departures; ``endpoints`` for link
    events.  Arrivals carry the new AS's chosen neighbours.
    """

    kind: ChurnKind
    node: int | None = None
    endpoints: tuple[int, int] | None = None
    neighbors: tuple[int, ...] = ()


@dataclass(frozen=True)
class ChurnTrace:
    """A reproducible event stream over a base topology."""

    base: ASGraph
    events: list[ChurnEvent]


def generate_churn_trace(
    graph: ASGraph,
    *,
    num_events: int = 200,
    arrival_fraction: float = 0.3,
    departure_fraction: float = 0.2,
    link_up_fraction: float = 0.3,
    seed: SeedLike = 0,
) -> ChurnTrace:
    """Sample a plausible churn stream.

    Arrivals are stub ASes buying from 1-2 existing transit-ish nodes
    (degree-preferential); departures remove random low-degree stubs
    (hubs do not vanish overnight); link events toggle peering edges.
    Fractions must sum to <= 1; the remainder are LINK_DOWN events.
    """
    total = arrival_fraction + departure_fraction + link_up_fraction
    if total > 1.0 + 1e-9:
        raise AlgorithmError("event fractions must sum to <= 1")
    rng = ensure_rng(seed)
    n = graph.num_nodes
    degrees = graph.degrees().astype(np.float64)
    events: list[ChurnEvent] = []
    next_node = n
    active = set(range(n))
    draws = rng.random(num_events)
    for i in range(num_events):
        r = draws[i]
        if r < arrival_fraction:
            count = int(rng.integers(1, 3))
            pool = np.fromiter(active, dtype=np.int64)
            weights = degrees[pool % n] + 1.0
            weights /= weights.sum()
            neighbors = tuple(
                int(x) for x in rng.choice(pool, size=min(count, len(pool)),
                                           replace=False, p=weights)
            )
            events.append(
                ChurnEvent(ChurnKind.AS_ARRIVAL, node=next_node, neighbors=neighbors)
            )
            active.add(next_node)
            next_node += 1
        elif r < arrival_fraction + departure_fraction:
            # Remove a low-degree original stub that is still active.
            stubs = [
                v for v in active
                if v < n and degrees[v] <= 3 and graph.kinds[v] == int(NodeKind.AS)
            ]
            if not stubs:
                continue
            victim = int(stubs[int(rng.integers(len(stubs)))])
            active.discard(victim)
            events.append(ChurnEvent(ChurnKind.AS_DEPARTURE, node=victim))
        elif r < total:
            pool = np.fromiter(active, dtype=np.int64)
            u, v = rng.choice(pool, size=2, replace=False)
            events.append(
                ChurnEvent(ChurnKind.LINK_UP, endpoints=(int(u), int(v)))
            )
        else:
            if graph.num_edges == 0:
                continue
            e = int(rng.integers(graph.num_edges))
            events.append(
                ChurnEvent(
                    ChurnKind.LINK_DOWN,
                    endpoints=(int(graph.edge_src[e]), int(graph.edge_dst[e])),
                )
            )
    return ChurnTrace(base=graph, events=events)


class MutableTopology:
    """Adjacency-set view of an ASGraph that absorbs topology deltas.

    Shared by the churn maintainer below and by the fault-injection
    self-healing loop (:mod:`repro.resilience.healing`): both need a
    cheap mutable adjacency with node/link add/remove and an ``alive``
    set, without rebuilding the immutable :class:`ASGraph`.
    """

    def __init__(self, graph: ASGraph) -> None:
        self.adjacency: dict[int, set[int]] = {
            v: set(int(x) for x in graph.neighbors(v)) for v in range(graph.num_nodes)
        }
        self.alive: set[int] = set(range(graph.num_nodes))

    def add_node(self, node: int, neighbors: tuple[int, ...]) -> None:
        self.adjacency.setdefault(node, set())
        self.alive.add(node)
        for u in neighbors:
            if u in self.alive and u != node:
                self.adjacency[node].add(u)
                self.adjacency.setdefault(u, set()).add(node)

    def remove_node(self, node: int) -> set[int]:
        """Remove and return the ex-neighbours (they may lose coverage)."""
        if node not in self.alive:
            return set()
        self.alive.discard(node)
        neighbors = self.adjacency.pop(node, set())
        for u in neighbors:
            self.adjacency.get(u, set()).discard(node)
        return neighbors

    def add_link(self, u: int, v: int) -> bool:
        if u == v or u not in self.alive or v not in self.alive:
            return False
        if v in self.adjacency[u]:
            return False
        self.adjacency[u].add(v)
        self.adjacency[v].add(u)
        return True

    def remove_link(self, u: int, v: int) -> bool:
        if u not in self.alive or v not in self.alive:
            return False
        if v not in self.adjacency.get(u, set()):
            return False
        self.adjacency[u].discard(v)
        self.adjacency[v].discard(u)
        return True


@dataclass
class RepairStats:
    """Bookkeeping of the maintenance loop."""

    events_applied: int = 0
    repairs_triggered: int = 0
    brokers_added: int = 0
    brokers_retired: int = 0


class IncrementalBrokerSet:
    """Maintains broker coverage under topology churn.

    ``coverage_target`` is the fraction of live vertices that must stay
    covered; when churn pushes coverage below it, the maintainer adds the
    highest-gain candidates adjacent to the covered region (the MaxSG
    rule) until the target holds or ``max_brokers`` is reached.  Brokers
    that depart the topology are retired automatically.

    All state lives in one :class:`~repro.core.engine.DominationEngine`:
    each delta patches the covered mask in O(affected neighbourhood) and
    :meth:`coverage_fraction` is an O(1) counter read, where the
    reference maintainer rebuilds the covered set per query.  Departures
    cut the node's live links before failing it, so an id that later
    re-arrives comes back bare — the same contract as the reference's
    adjacency-dict removal.  Repairs scan candidates in sorted order
    (ties break to the smallest id, as in the self-healing loop), so a
    seeded trace replays to a bit-identical broker set.
    """

    def __init__(
        self,
        graph: ASGraph,
        brokers: list[int],
        *,
        coverage_target: float = 0.9,
        max_brokers: int | None = None,
    ) -> None:
        if not 0.0 < coverage_target <= 1.0:
            raise AlgorithmError("coverage_target must be in (0, 1]")
        self._brokers = set(int(b) for b in brokers)
        if not self._brokers:
            raise AlgorithmError("broker set must be non-empty")
        self._engine = DominationEngine(graph, sorted(self._brokers))
        # External id -> engine id, for traces whose arrival ids do not
        # line up with the engine's dense allocation (and the reverse map
        # for reporting).  Empty for generator-produced traces.
        self._alias: dict[int, int] = {}
        self._rev: dict[int, int] = {}
        self._target = coverage_target
        self._max_brokers = max_brokers if max_brokers is not None else len(
            self._brokers
        ) * 2
        self.stats = RepairStats()

    # ------------------------------------------------------------------
    # State inspection
    # ------------------------------------------------------------------
    @property
    def brokers(self) -> list[int]:
        return sorted(self._brokers)

    @property
    def engine(self) -> DominationEngine:
        """The backing mutable domination state."""
        return self._engine

    def covered_set(self) -> set[int]:
        rev = self._rev
        return {
            rev.get(int(v), int(v))
            for v in np.flatnonzero(self._engine.covered_view)
        }

    def coverage_fraction(self) -> float:
        return self._engine.coverage_fraction()

    def _engine_id(self, node: int) -> int:
        return self._alias.get(node, node)

    # ------------------------------------------------------------------
    # Event application
    # ------------------------------------------------------------------
    def apply(self, event: ChurnEvent) -> None:
        """Absorb one delta, retiring/repairing brokers as needed."""
        engine = self._engine
        if event.kind is ChurnKind.AS_ARRIVAL:
            assert event.node is not None
            node = int(event.node)
            eng = self._engine_id(node)
            if 0 <= eng < engine.num_nodes:
                # A known id re-arrives: revive it (bare — its links were
                # cut on departure) and attach the new neighbours.
                if not engine.is_alive(eng):
                    engine.restore_node(eng)
                for u in event.neighbors:
                    engine.add_link(eng, self._engine_id(int(u)))
            else:
                neighbors = tuple(
                    self._engine_id(int(u)) for u in event.neighbors
                )
                eng = engine.add_node(neighbors)
                if eng != node:
                    self._alias[node] = eng
                    self._rev[eng] = node
        elif event.kind is ChurnKind.AS_DEPARTURE:
            assert event.node is not None
            node = int(event.node)
            eng = self._engine_id(node)
            known = 0 <= eng < engine.num_nodes
            if node in self._brokers:
                self._brokers.discard(node)
                if known:
                    engine.remove_broker(eng)
                self.stats.brokers_retired += 1
            if known and engine.is_alive(eng):
                for u in [int(x) for x in engine.alive_neighbors(eng)]:
                    engine.cut_link(eng, u)
                engine.fail_node(eng)
        elif event.kind is ChurnKind.LINK_UP:
            assert event.endpoints is not None
            u, v = (self._engine_id(int(x)) for x in event.endpoints)
            if 0 <= u < engine.num_nodes and 0 <= v < engine.num_nodes:
                engine.add_link(u, v)
        elif event.kind is ChurnKind.LINK_DOWN:
            assert event.endpoints is not None
            u, v = (self._engine_id(int(x)) for x in event.endpoints)
            if (
                0 <= u < engine.num_nodes
                and 0 <= v < engine.num_nodes
                and engine.is_alive(u)
                and engine.is_alive(v)
            ):
                engine.cut_link(u, v)
        self.stats.events_applied += 1
        if self.coverage_fraction() < self._target:
            self._repair()

    def run(self, trace: ChurnTrace) -> RepairStats:
        """Apply a whole trace; returns the accumulated statistics."""
        for event in trace.events:
            self.apply(event)
        return self.stats

    # ------------------------------------------------------------------
    # Repair
    # ------------------------------------------------------------------
    def _repair(self) -> None:
        """Greedy patching until the target holds (MaxSG rule).

        Candidates are vertices adjacent to the covered region (keeping
        the dominating-path invariant); each patch picks the candidate
        covering the most uncovered vertices.
        """
        self.stats.repairs_triggered += 1
        engine = self._engine
        while (
            len(self._brokers) < self._max_brokers
            and engine.coverage_fraction() < self._target
        ):
            covered = engine.covered_view
            uncovered = np.flatnonzero(engine.alive_view & ~covered)
            if len(uncovered) == 0:
                break
            # Candidate pool: covered vertices and their neighbours (the
            # connected-growth rule), falling back to uncovered hubs when
            # churn has detached whole regions.
            candidates: set[int] = set()
            for v in np.flatnonzero(covered):
                v = int(v)
                candidates.add(v)
                candidates.update(int(u) for u in engine.alive_neighbors(v))
            candidates -= {self._engine_id(b) for b in self._brokers}
            if not candidates:
                candidates = set(int(v) for v in uncovered)
            best, best_gain = None, 0
            for c in sorted(candidates):
                gain = engine.marginal_gain(c)
                if gain > best_gain:
                    best, best_gain = c, gain
            if best is None:
                break
            engine.add_broker(best)
            self._brokers.add(self._rev.get(best, best))
            self.stats.brokers_added += 1

    # ------------------------------------------------------------------
    # Export for verification
    # ------------------------------------------------------------------
    def snapshot(self) -> ASGraph:
        """Materialize the current topology as an immutable ASGraph.

        Node ids are re-packed densely; used by tests to verify the
        incremental coverage against a from-scratch computation.
        """
        engine = self._engine
        alive = [int(v) for v in np.flatnonzero(engine.alive_view)]
        index = {v: i for i, v in enumerate(alive)}
        edges = [(index[u], index[v]) for u, v in engine.alive_edges()]
        return ASGraph.from_edges(len(alive), edges)

    def snapshot_brokers(self) -> list[int]:
        """Broker ids re-packed to match :meth:`snapshot`."""
        engine = self._engine
        alive = [int(v) for v in np.flatnonzero(engine.alive_view)]
        index = {v: i for i, v in enumerate(alive)}
        roster = sorted(self._engine_id(b) for b in self._brokers)
        return [index[b] for b in roster if b in index]


class IncrementalBrokerSetReference:
    """From-scratch maintainer over a :class:`MutableTopology`.

    Same events, same repair rule, same outputs as
    :class:`IncrementalBrokerSet`, but every :meth:`coverage_fraction`
    rebuilds the covered set from the broker roster — O(Σ deg(B)) per
    query instead of O(1).  Kept as the differential-testing oracle and
    the baseline the engine speedup benchmark measures against.
    """

    def __init__(
        self,
        graph: ASGraph,
        brokers: list[int],
        *,
        coverage_target: float = 0.9,
        max_brokers: int | None = None,
    ) -> None:
        if not 0.0 < coverage_target <= 1.0:
            raise AlgorithmError("coverage_target must be in (0, 1]")
        self._topo = MutableTopology(graph)
        self._brokers = set(int(b) for b in brokers)
        if not self._brokers:
            raise AlgorithmError("broker set must be non-empty")
        self._target = coverage_target
        self._max_brokers = max_brokers if max_brokers is not None else len(
            self._brokers
        ) * 2
        self.stats = RepairStats()

    # ------------------------------------------------------------------
    # State inspection
    # ------------------------------------------------------------------
    @property
    def brokers(self) -> list[int]:
        return sorted(self._brokers)

    def covered_set(self) -> set[int]:
        covered: set[int] = set()
        for b in self._brokers:
            if b in self._topo.alive:
                covered.add(b)
                covered |= self._topo.adjacency.get(b, set())
        return covered & self._topo.alive

    def coverage_fraction(self) -> float:
        alive = len(self._topo.alive)
        return len(self.covered_set()) / alive if alive else 0.0

    # ------------------------------------------------------------------
    # Event application
    # ------------------------------------------------------------------
    def apply(self, event: ChurnEvent) -> None:
        """Absorb one delta, retiring/repairing brokers as needed."""
        if event.kind is ChurnKind.AS_ARRIVAL:
            assert event.node is not None
            self._topo.add_node(event.node, event.neighbors)
        elif event.kind is ChurnKind.AS_DEPARTURE:
            assert event.node is not None
            self._topo.remove_node(event.node)
            if event.node in self._brokers:
                self._brokers.discard(event.node)
                self.stats.brokers_retired += 1
        elif event.kind is ChurnKind.LINK_UP:
            assert event.endpoints is not None
            self._topo.add_link(*event.endpoints)
        elif event.kind is ChurnKind.LINK_DOWN:
            assert event.endpoints is not None
            self._topo.remove_link(*event.endpoints)
        self.stats.events_applied += 1
        if self.coverage_fraction() < self._target:
            self._repair()

    def run(self, trace: ChurnTrace) -> RepairStats:
        """Apply a whole trace; returns the accumulated statistics."""
        for event in trace.events:
            self.apply(event)
        return self.stats

    # ------------------------------------------------------------------
    # Repair
    # ------------------------------------------------------------------
    def _repair(self) -> None:
        """Greedy patching until the target holds (MaxSG rule)."""
        self.stats.repairs_triggered += 1
        alive = self._topo.alive
        while (
            len(self._brokers) < self._max_brokers
            and self.coverage_fraction() < self._target
        ):
            covered = self.covered_set()
            uncovered = alive - covered
            if not uncovered:
                break
            candidates: set[int] = set()
            for v in covered:
                candidates.add(v)
                candidates |= self._topo.adjacency.get(v, set())
            candidates -= self._brokers
            candidates &= alive
            if not candidates:
                candidates = uncovered
            best, best_gain = None, 0
            for c in sorted(candidates):
                closed = (self._topo.adjacency.get(c, set()) | {c}) & alive
                gain = len(closed - covered)
                if gain > best_gain:
                    best, best_gain = c, gain
            if best is None:
                break
            self._brokers.add(best)
            self.stats.brokers_added += 1

    # ------------------------------------------------------------------
    # Export for verification
    # ------------------------------------------------------------------
    def snapshot(self) -> ASGraph:
        """Materialize the current topology as an immutable ASGraph."""
        alive = sorted(self._topo.alive)
        index = {v: i for i, v in enumerate(alive)}
        edges = []
        for u in alive:
            for v in self._topo.adjacency.get(u, set()):
                if u < v and v in index:
                    edges.append((index[u], index[v]))
        return ASGraph.from_edges(len(alive), edges)

    def snapshot_brokers(self) -> list[int]:
        """Broker ids re-packed to match :meth:`snapshot`."""
        alive = sorted(self._topo.alive)
        index = {v: i for i, v in enumerate(alive)}
        return [index[b] for b in sorted(self._brokers) if b in index]
