"""The brokered-SLA marketplace: routing meets economics.

Fig. 6 sketches the money flow of one brokered connection; this module
simulates a whole market of them.  Customers issue service requests over
discrete epochs; the coalition serves each with a B-dominated route
(:class:`~repro.routing.broker_routing.BrokerRouter`), charges both
endpoints the Stackelberg price, pays Nash-bargained fees for any hired
non-broker transit, and honours (or breaches) the per-request hop-bound
SLA.  The report aggregates exactly the quantities an operator of the
paper's scheme would track: service rate, SLA compliance, hire rate,
revenue, hire costs and profit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.economics.bargaining import nash_bargaining
from repro.exceptions import AlgorithmError, EconomicModelError
from repro.graph.asgraph import ASGraph
from repro.routing.broker_routing import BrokerRouter
from repro.utils.rng import SeedLike, ensure_rng


@dataclass(frozen=True)
class ServiceRequest:
    """One customer flow: route ``source -> destination`` within the SLA."""

    source: int
    destination: int
    volume: float = 1.0
    max_hops: int = 8

    def __post_init__(self) -> None:
        if self.volume <= 0:
            raise EconomicModelError("volume must be positive")
        if self.max_hops < 1:
            raise EconomicModelError("max_hops must be >= 1")


@dataclass
class MarketplaceReport:
    """Aggregated outcome of a simulated market epoch sequence."""

    requests: int = 0
    served: int = 0
    sla_breaches: int = 0
    unroutable: int = 0
    hired_route_count: int = 0
    revenue: float = 0.0
    hire_costs: float = 0.0
    routing_costs: float = 0.0
    hop_histogram: dict[int, int] = field(default_factory=dict)

    @property
    def profit(self) -> float:
        return self.revenue - self.hire_costs - self.routing_costs

    @property
    def service_rate(self) -> float:
        return self.served / self.requests if self.requests else 0.0

    @property
    def hire_rate(self) -> float:
        return self.hired_route_count / self.served if self.served else 0.0


def generate_requests(
    graph: ASGraph,
    count: int,
    *,
    max_hops: int = 8,
    volume_mean: float = 1.0,
    seed: SeedLike = 0,
) -> list[ServiceRequest]:
    """Uniform source/destination pairs with exponential volumes."""
    if count < 1:
        raise AlgorithmError("count must be >= 1")
    rng = ensure_rng(seed)
    n = graph.num_nodes
    requests = []
    while len(requests) < count:
        u, v = rng.integers(n), rng.integers(n)
        if u == v:
            continue
        requests.append(
            ServiceRequest(
                source=int(u),
                destination=int(v),
                volume=float(rng.exponential(volume_mean) + 1e-3),
                max_hops=max_hops,
            )
        )
    return requests


def simulate_marketplace(
    graph: ASGraph,
    brokers: list[int],
    requests: list[ServiceRequest],
    *,
    broker_price: float = 1.0,
    routing_cost: float = 0.05,
    beta: int = 4,
) -> MarketplaceReport:
    """Serve ``requests`` through the coalition and settle the money.

    Per served request of volume ``w``:

    * revenue ``2 · p_B · w`` (both endpoints are billed, as in Fig. 6);
    * every hired non-broker transit earns the Nash-bargained ``p_j``
      per unit volume (Theorem 5 with the coalition's price as input);
    * the coalition's own forwarding cost is ``c`` per broker hop.

    Requests whose only dominated route exceeds their hop bound are
    *SLA breaches* (counted, not billed); pairs with no dominated route
    at all are *unroutable*.
    """
    if broker_price < 0 or routing_cost < 0:
        raise EconomicModelError("prices and costs must be non-negative")
    router = BrokerRouter(graph, brokers)
    bargain = nash_bargaining(broker_price, routing_cost, beta=beta)
    employee_price = bargain.employee_price
    broker_set = set(router.brokers)
    report = MarketplaceReport()
    for request in requests:
        report.requests += 1
        route = router.route(request.source, request.destination)
        if route is None:
            report.unroutable += 1
            continue
        if route.hops > request.max_hops:
            report.sla_breaches += 1
            continue
        report.served += 1
        report.hop_histogram[route.hops] = (
            report.hop_histogram.get(route.hops, 0) + 1
        )
        report.revenue += 2.0 * broker_price * request.volume
        if route.hired_transits:
            report.hired_route_count += 1
            report.hire_costs += (
                employee_price * request.volume * len(route.hired_transits)
            )
        broker_hops = sum(1 for v in route.path[1:-1] if v in broker_set)
        report.routing_costs += routing_cost * request.volume * broker_hops
    return report
