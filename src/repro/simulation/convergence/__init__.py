"""Discrete-event convergence simulators: disruption *time*, not just state.

Two models over the same :class:`~repro.resilience.faults.FaultSchedule`
and :class:`~repro.simulation.convergence.core.LatencyModel` clock:

* :class:`BrokerConvergenceSimulator` — the paper's centralized control
  plane: detection, checkpointed re-planning on a delayed view of the
  network, and per-recruit install commands with loss/retry/backoff;
* :class:`BGPConvergenceSimulator` — the distributed baseline: per-
  message Gao-Rexford path-vector propagation with MRAI timers and path
  exploration.

Both emit a :class:`ConvergenceReport` (time-to-first-repair, time-to-
full-convergence, pair-seconds-dark, message counts) that is seeded-
replayable and bit-identical across runs.
"""

from repro.simulation.convergence.bgp import BGPConvergenceSimulator
from repro.simulation.convergence.broker import BrokerConvergenceSimulator
from repro.simulation.convergence.core import (
    DarknessIntegrator,
    EventQueue,
    LatencyModel,
)
from repro.simulation.convergence.report import (
    ConvergenceReport,
    report_from_dict,
    report_to_dict,
)

__all__ = [
    "BGPConvergenceSimulator",
    "BrokerConvergenceSimulator",
    "ConvergenceReport",
    "DarknessIntegrator",
    "EventQueue",
    "LatencyModel",
    "report_from_dict",
    "report_to_dict",
]
