"""Message-level BGP baseline: path exploration under MRAI timers.

The fixed-point computation in :mod:`repro.routing.bgp` jumps straight
to the converged Gao-Rexford routes; this simulator walks there one
UPDATE at a time, which is where BGP's disruption cost lives.  Sessions
notice a failure only after ``detection_delay``; each hop of an UPDATE
pays ``link_delay``; repeat announcements on a session are rate-limited
by the ``mrai`` timer (withdrawals are not); and a router that loses
its best route falls back to the next entry in its Adj-RIB-In — often a
*stale* path through the very failure, which it happily announces
onward until the withdrawal wave catches up.  That fallback cascade is
BGP path exploration, and it is why the baseline's convergence time
stretches across multiple MRAI rounds while the broker control plane
re-stitches in one detection + RTT + FIB write.

State is tracked per sampled destination (seeded sample — full O(n²)
pair tracking would swamp the small profiles): per-router best route
(Adj-RIB-Out side), per-session Adj-RIB-In, per-session last-advertised
route and MRAI deadline.  Import applies loop rejection; the decision
process ranks candidates with :func:`repro.routing.bgp.preference_key`
and exports under :func:`repro.routing.bgp.export_allowed` — the same
policy predicates as the fixed point, so quiescence lands on an
equally-preferred route set.  A pair counts *dark* when the source has
no route or its current path traverses a down node or cut link (the
data plane drops on stale paths long before control-plane withdrawal).
"""

from __future__ import annotations

from repro.exceptions import AlgorithmError
from repro.graph.asgraph import ASGraph
from repro.obs import add_counter, get_tracer, profiled
from repro.resilience.faults import FaultKind, FaultSchedule
from repro.routing.bgp import BGPSimulator, RouteType, export_allowed, preference_key
from repro.simulation.convergence.core import (
    PRIO_DETECT,
    PRIO_FAULT,
    PRIO_MESSAGE,
    PRIO_TIMER,
    DarknessIntegrator,
    EventQueue,
    LatencyModel,
)
from repro.simulation.convergence.report import ConvergenceReport
from repro.utils.rng import SeedLike, ensure_rng

__all__ = ["BGPConvergenceSimulator"]

_CUSTOMER = int(RouteType.CUSTOMER)


class BGPConvergenceSimulator:
    """Simulate one fault campaign through per-message BGP convergence.

    Deterministic: destinations are a seeded sample, every scan is over
    sorted ids, and the event queue's ``(time, priority, seq)`` order is
    total — two same-seed runs emit bit-identical reports.
    """

    def __init__(
        self,
        graph: ASGraph,
        schedule: FaultSchedule,
        *,
        latency: LatencyModel | None = None,
        seed: SeedLike = 0,
        num_destinations: int = 8,
    ) -> None:
        if num_destinations < 1:
            raise AlgorithmError("num_destinations must be >= 1")
        self._graph = graph
        self._schedule = schedule
        self.latency = latency or LatencyModel()
        self._seed = seed
        self._num_destinations = num_destinations

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    @profiled("convergence.bgp")
    def run(self) -> ConvergenceReport:
        tracer = get_tracer()
        lat = self.latency
        n = self._graph.num_nodes
        rng = ensure_rng(self._seed)
        sim = BGPSimulator(self._graph)
        providers, customers, peers = sim.neighbor_tables()

        # Relationship class of the route a router learns from each
        # neighbor, and the sorted session list per router.
        nclass: list[dict[int, int]] = [{} for _ in range(n)]
        for v in range(n):
            for u in customers[v]:
                nclass[v][u] = int(RouteType.CUSTOMER)
            for u in peers[v]:
                nclass[v][u] = int(RouteType.PEER)
            for u in providers[v]:
                nclass[v][u] = int(RouteType.PROVIDER)
        self._nclass = nclass
        self._sessions = [sorted(nclass[v]) for v in range(n)]

        dests = sorted(
            int(d)
            for d in rng.choice(n, size=min(self._num_destinations, n), replace=False)
        )
        self._dests = dests
        # Per-destination protocol state, indexed by destination slot.
        self._rib: list[dict[int, tuple[int, tuple, int]]] = []
        self._adj_in: list[dict[int, dict[int, tuple]]] = []
        self._last_sent: list[dict[tuple[int, int], tuple | None]] = []
        self._mrai_until: list[dict[tuple[int, int], float]] = []
        self._timer_set: list[set[tuple[int, int]]] = []
        self._valid: list[set[int]] = []
        for d in dests:
            self._init_destination(sim, d)
        self._down: set[int] = set()
        self._cut: set[frozenset] = set()
        v0 = sum(len(s) for s in self._valid)
        self._valid_count = v0
        self._v0 = v0
        baseline = v0 / (len(dests) * (n - 1)) if n > 1 else 0.0

        queue = EventQueue()
        self._queue = queue
        dark = DarknessIntegrator()
        self._dark = dark
        # Same clock as the broker model: steps 1..num_steps only.
        fault_steps = sorted({
            e.step for e in self._schedule.events
            if 1 <= e.step <= self._schedule.num_steps
        })
        for step in fault_steps:
            queue.push(lat.fault_time(step), PRIO_FAULT, ("fault", step))
        first_fault = lat.fault_time(fault_steps[0]) if fault_steps else None

        self._sent = self._lost = 0
        self._last_rib_change: float | None = None
        processed = 0
        with tracer.span(
            "convergence.bgp.run",
            events=len(self._schedule.events),
            destinations=len(dests),
        ) as span:
            while queue:
                t, payload = queue.pop()
                processed += 1
                kind = payload[0]
                if kind == "fault":
                    self._apply_fault_step(payload[1], t)
                elif kind == "session_down":
                    self._session_down(payload[1], payload[2], t)
                elif kind == "session_up":
                    self._session_up(payload[1], payload[2], t)
                elif kind == "msg":
                    self._deliver(payload[1], payload[2], payload[3], payload[4], t)
                elif kind == "timer":
                    self._timer(payload[1], payload[2], payload[3], t)
                else:  # pragma: no cover - defensive
                    raise AlgorithmError(f"unknown BGP event {kind!r}")
            span.set(messages=self._sent, lost=self._lost)

        end_time = queue.now
        pair_seconds = dark.finish(end_time)
        add_counter("convergence.bgp.runs", 1)
        add_counter("convergence.bgp.messages", self._sent)
        converged = dark.last_change_time
        if self._last_rib_change is not None:
            converged = max(
                converged if converged is not None else self._last_rib_change,
                self._last_rib_change,
            )
        return ConvergenceReport(
            model="bgp",
            description=self._schedule.description,
            baseline=baseline,
            first_fault_time=first_fault,
            time_to_first_repair=_offset(dark.first_repair_time, first_fault),
            time_to_full_convergence=_offset(converged, first_fault),
            pair_seconds_dark=pair_seconds,
            final_dark_fraction=dark.current,
            max_dark_fraction=max(d for _, d in dark.timeline),
            messages_sent=self._sent,
            messages_lost=self._lost,
            retries=0,
            events_processed=processed,
            end_time=end_time,
            timeline=tuple(dark.timeline),
        )

    # ------------------------------------------------------------------
    # Initial converged state (the route_to fixed point, message-free)
    # ------------------------------------------------------------------
    def _init_destination(self, sim: BGPSimulator, d: int) -> None:
        n = self._graph.num_nodes
        info = sim.route_to(d)
        paths: dict[int, tuple] = {d: (d,)}

        def path_of(v: int) -> tuple:
            chain = []
            while v not in paths:
                chain.append(v)
                v = int(info.next_hop[v])
            tail = paths[v]
            for u in reversed(chain):
                tail = (u,) + tail
                paths[u] = tail
            return paths[chain[0]] if chain else tail

        rib: dict[int, tuple[int, tuple, int]] = {
            d: (int(RouteType.SELF), (d,), -1)
        }
        for v in range(n):
            if v != d and info.route_type[v] != int(RouteType.NONE):
                rib[v] = (int(info.route_type[v]), path_of(v), int(info.next_hop[v]))
        adj_in: dict[int, dict[int, tuple]] = {v: {} for v in range(n)}
        last_sent: dict[tuple[int, int], tuple | None] = {}
        for u in range(n):
            route = rib.get(u)
            if route is None:
                continue
            klass, path, _ = route
            for v in self._sessions[u]:
                if export_allowed(klass, to_customer=self._nclass[u][v] == _CUSTOMER):
                    last_sent[(u, v)] = path
                    if v not in path:
                        adj_in[v][u] = path
        self._rib.append(rib)
        self._adj_in.append(adj_in)
        self._last_sent.append(last_sent)
        self._mrai_until.append({})
        self._timer_set.append(set())
        self._valid.append({v for v in rib if v != d})

    # ------------------------------------------------------------------
    # Fault application
    # ------------------------------------------------------------------
    def _apply_fault_step(self, step: int, t: float) -> None:
        lat = self.latency
        detect = t + lat.detection_delay
        for event in self._schedule.at(step):
            if event.kind is FaultKind.BROKER_DOWN:
                x = event.node
                if x is None or x in self._down:
                    continue
                self._down.add(x)
                for w in self._sessions[x]:
                    # w's side times the session out (x itself is frozen);
                    # the session was up iff w is alive and the link uncut.
                    if w not in self._down and frozenset((w, x)) not in self._cut:
                        self._queue.push(detect, PRIO_DETECT, ("session_down", w, x))
            elif event.kind is FaultKind.BROKER_UP:
                x = event.node
                if x is None or x not in self._down:
                    continue
                self._down.discard(x)
                self._reboot(x)
                for w in self._sessions[x]:
                    if self._session_alive(x, w):
                        self._queue.push(detect, PRIO_DETECT, ("session_up", x, w))
                        self._queue.push(detect, PRIO_DETECT, ("session_up", w, x))
            elif event.kind is FaultKind.LINK_CUT:
                if event.endpoints is None:
                    continue
                u, v = int(event.endpoints[0]), int(event.endpoints[1])
                key = frozenset((u, v))
                if key in self._cut:
                    continue
                notify = self._session_alive(u, v)
                self._cut.add(key)
                if notify:
                    self._queue.push(detect, PRIO_DETECT, ("session_down", u, v))
                    self._queue.push(detect, PRIO_DETECT, ("session_down", v, u))
        self._refresh_validity(t)

    def _reboot(self, x: int) -> None:
        """A recovered router comes back empty (cold RIB, fresh sessions)."""
        for di, d in enumerate(self._dests):
            self._adj_in[di][x] = {}
            if x != d:
                self._rib[di].pop(x, None)
            for w in self._sessions[x]:
                self._last_sent[di].pop((x, w), None)
                self._mrai_until[di].pop((x, w), None)

    # ------------------------------------------------------------------
    # Session events
    # ------------------------------------------------------------------
    def _session_alive(self, u: int, v: int) -> bool:
        return (
            u not in self._down
            and v not in self._down
            and frozenset((u, v)) not in self._cut
        )

    def _session_down(self, u: int, x: int, t: float) -> None:
        """Router ``u`` times out its session to ``x``."""
        if u in self._down:
            return
        for di in range(len(self._dests)):
            self._last_sent[di].pop((u, x), None)
            self._mrai_until[di].pop((u, x), None)
            if self._adj_in[di][u].pop(x, None) is not None:
                self._decide(di, u, t)

    def _session_up(self, u: int, x: int, t: float) -> None:
        """Session ``u -> x`` (re-)establishes: ``u`` sends its table."""
        if not self._session_alive(u, x):
            return
        for di in range(len(self._dests)):
            self._last_sent[di][(u, x)] = None
            self._mrai_until[di].pop((u, x), None)
            if u in self._rib[di]:
                self._sync(di, u, x, t)

    # ------------------------------------------------------------------
    # Decision process, export policy, MRAI pacing
    # ------------------------------------------------------------------
    def _decide(self, di: int, v: int, t: float) -> None:
        d = self._dests[di]
        if v == d:
            return
        best: tuple[int, tuple, int] | None = None
        best_key = None
        table = self._adj_in[di][v]
        for u in sorted(table):
            path = table[u]
            key = preference_key(self._nclass[v][u], len(path), u)
            if best_key is None or key < best_key:
                best_key = key
                best = (self._nclass[v][u], (v,) + path, u)
        old = self._rib[di].get(v)
        if best == old:
            return
        if best is None:
            del self._rib[di][v]
        else:
            self._rib[di][v] = best
        self._last_rib_change = t
        self._update_validity(di, v, t)
        for w in self._sessions[v]:
            if self._session_alive(v, w):
                self._sync(di, v, w, t)

    def _sync(self, di: int, v: int, w: int, t: float) -> None:
        """Bring session ``v -> w`` in line with ``v``'s current best.

        Withdrawals go out immediately; announcements respect the MRAI
        deadline, deferring (one timer per session) when inside it.
        """
        route = self._rib[di].get(v)
        desired: tuple | None = None
        if route is not None:
            klass, path, _ = route
            if export_allowed(klass, to_customer=self._nclass[v][w] == _CUSTOMER):
                desired = path
        if desired == self._last_sent[di].get((v, w)):
            return
        if desired is None:
            self._send(di, v, w, None, t)
            return
        until = self._mrai_until[di].get((v, w), 0.0)
        if t >= until:
            self._send(di, v, w, desired, t)
        elif (v, w) not in self._timer_set[di]:
            self._timer_set[di].add((v, w))
            self._queue.push(until, PRIO_TIMER, ("timer", di, v, w))

    def _timer(self, di: int, v: int, w: int, t: float) -> None:
        self._timer_set[di].discard((v, w))
        if self._session_alive(v, w):
            self._sync(di, v, w, t)

    def _send(self, di: int, v: int, w: int, path: tuple | None, t: float) -> None:
        self._last_sent[di][(v, w)] = path
        if path is not None:
            self._mrai_until[di][(v, w)] = t + self.latency.mrai
        self._sent += 1
        self._queue.push(
            t + self.latency.link_delay, PRIO_MESSAGE, ("msg", di, v, w, path)
        )

    def _deliver(self, di: int, u: int, v: int, path: tuple | None, t: float) -> None:
        if not self._session_alive(u, v):
            self._lost += 1
            return
        if path is None or v in path:
            self._adj_in[di][v].pop(u, None)
        else:
            self._adj_in[di][v][u] = path
        self._decide(di, v, t)

    # ------------------------------------------------------------------
    # Darkness bookkeeping
    # ------------------------------------------------------------------
    def _path_valid(self, path: tuple) -> bool:
        for node in path:
            if node in self._down:
                return False
        for a, b in zip(path, path[1:]):
            if frozenset((a, b)) in self._cut:
                return False
        return True

    def _pair_valid(self, di: int, v: int) -> bool:
        d = self._dests[di]
        if v == d or v in self._down or d in self._down:
            return False
        route = self._rib[di].get(v)
        return route is not None and self._path_valid(route[1])

    def _update_validity(self, di: int, v: int, t: float) -> None:
        now_valid = self._pair_valid(di, v)
        was_valid = v in self._valid[di]
        if now_valid and not was_valid:
            self._valid[di].add(v)
            self._valid_count += 1
        elif was_valid and not now_valid:
            self._valid[di].discard(v)
            self._valid_count -= 1
        else:
            return
        self._dark.update(t, self._dark_fraction())

    def _refresh_validity(self, t: float) -> None:
        """Full data-plane rescan after a fault batch changed topology."""
        count = 0
        for di in range(len(self._dests)):
            fresh = {
                v for v in self._rib[di] if self._pair_valid(di, v)
            }
            self._valid[di] = fresh
            count += len(fresh)
        self._valid_count = count
        self._dark.update(t, self._dark_fraction())

    def _dark_fraction(self) -> float:
        if self._v0 <= 0:
            return 0.0
        return min(1.0, max(0.0, (self._v0 - self._valid_count) / self._v0))


def _offset(time: float | None, origin: float | None) -> float | None:
    if time is None or origin is None:
        return None
    return time - origin
