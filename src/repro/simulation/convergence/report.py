"""The common outcome type of both convergence models.

A :class:`ConvergenceReport` captures one fault campaign's disruption
profile — *how long* pairs stayed dark, not just which pairs ended up
dark (that is :class:`repro.resilience.replay.ResilienceReport`'s job).
All times are in the :class:`~repro.simulation.convergence.core.
LatencyModel`'s abstract seconds and are measured from the first fault,
so a broker run and a BGP run over the same schedule are directly
comparable.  Reports are plain data: lossless dict round-trip for the
result cache/ledger and a canonical digest for bit-identical replay
checks.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

__all__ = ["ConvergenceReport", "report_to_dict", "report_from_dict"]


@dataclass(frozen=True)
class ConvergenceReport:
    """Disruption profile of one simulated fault campaign.

    ``baseline`` is the model's healthy-state service level (the broker
    model's saturated connectivity / the BGP model's policy-reachable
    fraction over sampled pairs); darkness is measured relative to it,
    so ``pair_seconds_dark`` integrates "fraction of initially-served
    pairs out of service" over time.  ``time_to_first_repair`` and
    ``time_to_full_convergence`` are offsets from ``first_fault_time``
    (``None`` when the campaign caused no disruption, or — for the
    former — when nothing ever recovered).  A non-zero
    ``final_dark_fraction`` is graceful degradation: the model
    quiesced on stale/partial paths rather than full service.
    """

    model: str
    description: str
    baseline: float
    first_fault_time: float | None
    time_to_first_repair: float | None
    time_to_full_convergence: float | None
    pair_seconds_dark: float
    final_dark_fraction: float
    max_dark_fraction: float
    messages_sent: int
    messages_lost: int
    retries: int
    events_processed: int
    end_time: float
    timeline: tuple[tuple[float, float], ...]

    def digest(self) -> str:
        """Canonical content hash — equal iff the reports are equal."""
        payload = json.dumps(
            report_to_dict(self), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def summary(self) -> str:
        ttfr = (
            "-" if self.time_to_first_repair is None
            else f"{self.time_to_first_repair:.2f}s"
        )
        ttc = (
            "-" if self.time_to_full_convergence is None
            else f"{self.time_to_full_convergence:.2f}s"
        )
        return (
            f"{self.model}: first repair {ttfr}, converged {ttc}, "
            f"{self.pair_seconds_dark:.3f} pair-s dark "
            f"(peak {100 * self.max_dark_fraction:.1f}%, "
            f"final {100 * self.final_dark_fraction:.1f}%), "
            f"{self.messages_sent} msgs"
        )


def report_to_dict(report: ConvergenceReport) -> dict:
    """JSON-safe form of a :class:`ConvergenceReport` (lossless)."""
    return {
        "model": report.model,
        "description": report.description,
        "baseline": report.baseline,
        "first_fault_time": report.first_fault_time,
        "time_to_first_repair": report.time_to_first_repair,
        "time_to_full_convergence": report.time_to_full_convergence,
        "pair_seconds_dark": report.pair_seconds_dark,
        "final_dark_fraction": report.final_dark_fraction,
        "max_dark_fraction": report.max_dark_fraction,
        "messages_sent": report.messages_sent,
        "messages_lost": report.messages_lost,
        "retries": report.retries,
        "events_processed": report.events_processed,
        "end_time": report.end_time,
        "timeline": [[t, d] for t, d in report.timeline],
    }


def report_from_dict(data: dict) -> ConvergenceReport:
    """Inverse of :func:`report_to_dict`."""

    def _opt(value) -> float | None:
        return None if value is None else float(value)

    return ConvergenceReport(
        model=str(data["model"]),
        description=str(data["description"]),
        baseline=float(data["baseline"]),
        first_fault_time=_opt(data["first_fault_time"]),
        time_to_first_repair=_opt(data["time_to_first_repair"]),
        time_to_full_convergence=_opt(data["time_to_full_convergence"]),
        pair_seconds_dark=float(data["pair_seconds_dark"]),
        final_dark_fraction=float(data["final_dark_fraction"]),
        max_dark_fraction=float(data["max_dark_fraction"]),
        messages_sent=int(data["messages_sent"]),
        messages_lost=int(data["messages_lost"]),
        retries=int(data["retries"]),
        events_processed=int(data["events_processed"]),
        end_time=float(data["end_time"]),
        timeline=tuple((float(t), float(d)) for t, d in data["timeline"]),
    )
