"""Event-driven broker control plane: how fast does re-stitching happen?

The state-based replay (:func:`repro.resilience.replay.replay_schedule`)
answers *what* the healed broker set looks like; this simulator answers
*how long* the network stayed dark getting there.  The same
:class:`~repro.resilience.faults.FaultSchedule` drives two
:class:`~repro.core.engine.DominationEngine`-backed states:

* the **network** — ground truth, degraded the instant a fault fires
  and repaired only when an install actually lands;
* the controller's **view** — learns of a fault ``detection_delay``
  later, *plans* the repair with the exact rule the SLA self-healer
  uses (a checkpointed dry run on the view engine, rolled back before
  any commitment), and then issues one install command per recruit.

Each install pays ``control_rtt + fib_install``; with ``loss_prob > 0``
commands are dropped (seeded), retried under exponential backoff, and —
once retries are exhausted — abandoned: the network degrades gracefully
to its stale paths instead of crashing, which is precisely the broker
scheme's failure mode the paper's Section 7.2 asks about.

Because planning delegates to the same
:func:`~repro.resilience.healing.best_coverage_candidate` /
:func:`~repro.resilience.healing.best_bridge_candidate` pair as
:class:`~repro.resilience.healing.SelfHealingBrokerSet`, a lossless run
whose control-plane latencies fit inside one schedule step converges to
*exactly* the state-based replay's broker set — the differential
property the test suite pins down.
"""

from __future__ import annotations

from repro.exceptions import AlgorithmError
from repro.graph.asgraph import ASGraph
from repro.obs import add_counter, get_tracer, profiled
from repro.resilience.faults import FaultSchedule
from repro.resilience.healing import (
    SelfHealingBrokerSet,
    SlaPolicy,
    best_bridge_candidate,
    best_coverage_candidate,
)
from repro.simulation.convergence.core import (
    PRIO_DETECT,
    PRIO_FAULT,
    PRIO_MESSAGE,
    PRIO_TIMER,
    DarknessIntegrator,
    EventQueue,
    LatencyModel,
)
from repro.simulation.convergence.report import ConvergenceReport
from repro.utils.rng import SeedLike, ensure_rng

__all__ = ["BrokerConvergenceSimulator"]


class BrokerConvergenceSimulator:
    """Simulate one fault campaign through the broker control plane.

    Deterministic: the event queue's ``(time, priority, seq)`` order is
    total, loss draws are consumed in event order from one seeded
    generator, and every planning scan is the sorted-deterministic
    healer rule — so two same-seed runs emit bit-identical reports.
    After :meth:`run`, :attr:`network` exposes the ground-truth final
    state for differential checks against ``replay_schedule``.
    """

    def __init__(
        self,
        graph: ASGraph,
        brokers: list[int],
        schedule: FaultSchedule,
        *,
        latency: LatencyModel | None = None,
        policy: SlaPolicy | None = None,
        seed: SeedLike = 0,
    ) -> None:
        self._graph = graph
        self._brokers = [int(b) for b in brokers]
        self._schedule = schedule
        self.latency = latency or LatencyModel()
        self.policy = policy or SlaPolicy()
        self._seed = seed
        #: Ground-truth state, populated by :meth:`run`.
        self.network: SelfHealingBrokerSet | None = None
        #: Controller's delayed view, populated by :meth:`run`.
        self.view: SelfHealingBrokerSet | None = None

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    @profiled("convergence.broker")
    def run(self) -> ConvergenceReport:
        tracer = get_tracer()
        lat = self.latency
        rng = ensure_rng(self._seed)
        network = SelfHealingBrokerSet(
            self._graph, self._brokers, policy=self.policy
        )
        view = SelfHealingBrokerSet(self._graph, self._brokers, policy=self.policy)
        self.network, self.view = network, view
        baseline = network.baseline

        queue = EventQueue()
        dark = DarknessIntegrator()
        # Mirror replay_schedule's clock exactly: faults fire on steps
        # 1..num_steps (step-0 events are outside the replay horizon),
        # and the controller polls the SLA *every* step — a violation
        # that survived one budgeted repair is retried next step with a
        # fresh per-incident budget, just like maybe_repair.
        fault_steps = sorted({
            e.step for e in self._schedule.events
            if 1 <= e.step <= self._schedule.num_steps
        })
        for step in fault_steps:
            queue.push(lat.fault_time(step), PRIO_FAULT, ("fault", step))
        for step in range(1, self._schedule.num_steps + 1):
            queue.push(
                lat.fault_time(step) + lat.detection_delay,
                PRIO_DETECT,
                ("detect", step),
            )
        first_fault = lat.fault_time(fault_steps[0]) if fault_steps else None

        pending: set[int] = set()  # recruits commanded but not installed
        planned_total = 0          # counts toward policy.max_total_added
        sent = lost = retried = processed = abandoned = 0

        with tracer.span(
            "convergence.broker.run", events=len(self._schedule.events)
        ) as span:
            while queue:
                t, payload = queue.pop()
                processed += 1
                kind = payload[0]
                if kind == "fault":
                    for event in self._schedule.at(payload[1]):
                        network.apply(event)
                    dark.update(t, self._dark_fraction(network, baseline))
                elif kind == "detect":
                    for event in self._schedule.at(payload[1]):
                        view.apply(event)
                    planned = self._plan(view, pending, planned_total)
                    planned_total += len(planned)
                    for recruit in planned:
                        pending.add(recruit)
                        outcome = self._dispatch(queue, t, recruit, 1, rng)
                        sent += 1
                        lost += outcome
                elif kind == "retry":
                    recruit, attempt = payload[1], payload[2]
                    outcome = self._dispatch(queue, t, recruit, attempt, rng)
                    sent += 1
                    retried += 1
                    lost += outcome
                elif kind == "abandon":
                    # All retries exhausted: degrade gracefully — the
                    # network keeps serving over its stale paths and the
                    # recruit slot is freed for future planning.
                    pending.discard(payload[1])
                    abandoned += 1
                elif kind == "install":
                    recruit = payload[1]
                    pending.discard(recruit)
                    network.recruit(recruit)
                    view.recruit(recruit)
                    dark.update(t, self._dark_fraction(network, baseline))
                else:  # pragma: no cover - defensive
                    raise AlgorithmError(f"unknown broker event {kind!r}")
            span.set(messages=sent, lost=lost, installs=planned_total - len(pending))

        end_time = queue.now
        pair_seconds = dark.finish(end_time)
        add_counter("convergence.broker.runs", 1)
        add_counter("convergence.broker.messages", sent)
        add_counter("convergence.broker.lost", lost)
        add_counter("convergence.broker.abandoned", abandoned)
        return ConvergenceReport(
            model="broker",
            description=self._schedule.description,
            baseline=baseline,
            first_fault_time=first_fault,
            time_to_first_repair=_offset(dark.first_repair_time, first_fault),
            time_to_full_convergence=_offset(dark.last_change_time, first_fault),
            pair_seconds_dark=pair_seconds,
            final_dark_fraction=dark.current,
            max_dark_fraction=max(d for _, d in dark.timeline),
            messages_sent=sent,
            messages_lost=lost,
            retries=retried,
            events_processed=processed,
            end_time=end_time,
            timeline=tuple(dark.timeline),
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @staticmethod
    def _dark_fraction(network: SelfHealingBrokerSet, baseline: float) -> float:
        """Fraction of baseline-connected pairs currently dark."""
        if baseline <= 0.0:
            return 0.0
        return max(0.0, (baseline - network.connectivity()) / baseline)

    def _plan(
        self, view: SelfHealingBrokerSet, pending: set[int], planned_total: int
    ) -> list[int]:
        """Choose recruits on the view — a checkpointed, rolled-back dry
        run of exactly the ``SelfHealingBrokerSet.maybe_repair`` rule.

        The view engine is mutated candidate-by-candidate so each greedy
        pick sees its predecessors (the sequence matters), then rolled
        back: nothing is committed until the install lands.  Pending
        recruits are excluded so a lossy run never commands the same
        vertex twice.
        """
        value = view.connectivity()
        if value >= view.sla_target:
            return []
        budget = self.policy.repair_budget
        if self.policy.max_total_added is not None:
            budget = min(budget, self.policy.max_total_added - planned_total)
        engine = view.engine
        excluded = set(view.active_brokers) | set(view.down_brokers) | set(pending)
        token = engine.checkpoint()
        planned: list[int] = []
        try:
            while budget > 0 and value < view.sla_target:
                candidate = best_coverage_candidate(engine, excluded=excluded)
                if candidate is None:
                    candidate = best_bridge_candidate(
                        engine, excluded=excluded, current=value
                    )
                if candidate is None:
                    break
                engine.add_broker(candidate)
                excluded.add(candidate)
                planned.append(candidate)
                budget -= 1
                value = engine.saturated_connectivity()
        finally:
            engine.rollback(token)
        return planned

    def _dispatch(
        self, queue: EventQueue, t: float, recruit: int, attempt: int, rng
    ) -> int:
        """Send one install command; returns 1 if it was lost.

        A delivered command installs after the full control round trip
        plus FIB write; a lost one retries under exponential backoff
        until ``max_retries`` is spent, then abandons the recruit.
        """
        lat = self.latency
        if rng.random() < lat.loss_prob:
            if attempt <= lat.max_retries:
                queue.push(
                    t + lat.retry_delay(attempt),
                    PRIO_TIMER,
                    ("retry", recruit, attempt + 1),
                )
            else:
                queue.push(t, PRIO_TIMER, ("abandon", recruit))
            return 1
        queue.push(
            t + lat.control_rtt + lat.fib_install,
            PRIO_MESSAGE,
            ("install", recruit),
        )
        return 0


def _offset(time: float | None, origin: float | None) -> float | None:
    if time is None or origin is None:
        return None
    return time - origin
