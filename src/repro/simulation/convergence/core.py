"""Shared machinery of the convergence simulators.

Both convergence models — the broker control plane and the BGP
path-vector baseline — are discrete-event simulations over the same
clock: a :class:`LatencyModel` maps a :class:`FaultSchedule`'s integer
steps onto wall-clock fault times and prices every control-plane
action, an :class:`EventQueue` (stdlib ``heapq``, no simpy) delivers
events in a total deterministic order, and a
:class:`DarknessIntegrator` turns the piecewise-constant dark-pair
fraction into the paper-facing disruption metrics (pair-seconds-dark,
time-to-first-repair, time-to-full-convergence).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.exceptions import AlgorithmError

__all__ = [
    "LatencyModel",
    "EventQueue",
    "DarknessIntegrator",
    "PRIO_FAULT",
    "PRIO_DETECT",
    "PRIO_MESSAGE",
    "PRIO_TIMER",
]


#: Delivery order of co-occurring event classes.  Failures hit the data
#: plane before anyone reacts to them; detections fire before messages
#: whose sends they may supersede; expiring timers run last.
PRIO_FAULT = 0
PRIO_DETECT = 1
PRIO_MESSAGE = 2
PRIO_TIMER = 3


@dataclass(frozen=True)
class LatencyModel:
    """Every latency the control plane pays, in abstract seconds.

    ``step_interval`` places :class:`FaultSchedule` step ``s`` at wall
    time ``s * step_interval``.  The broker model pays ``detection_delay``
    (monitor notices the failure) + ``control_rtt`` (command round trip
    to the recruit) + ``fib_install`` (paths re-installed) per repair;
    the BGP baseline pays ``detection_delay`` (session timeout) +
    ``link_delay`` per UPDATE hop with ``mrai`` rate-limiting repeat
    announcements on a session.  ``loss_prob`` drops broker control
    messages (seeded), each retried after ``retry_timeout`` growing by
    ``retry_backoff`` per attempt, at most ``max_retries`` times before
    the repair degrades gracefully to the stale (pre-repair) paths.
    """

    detection_delay: float = 1.0
    control_rtt: float = 0.2
    fib_install: float = 0.1
    link_delay: float = 0.05
    mrai: float = 2.0
    loss_prob: float = 0.0
    retry_timeout: float = 0.5
    retry_backoff: float = 2.0
    max_retries: int = 3
    step_interval: float = 10.0

    def __post_init__(self) -> None:
        for name in (
            "detection_delay", "control_rtt", "fib_install", "link_delay",
            "mrai", "retry_timeout",
        ):
            if getattr(self, name) < 0:
                raise AlgorithmError(f"{name} must be >= 0")
        if not 0.0 <= self.loss_prob < 1.0:
            raise AlgorithmError(
                f"loss_prob must be in [0, 1), got {self.loss_prob}"
            )
        if self.retry_backoff < 1.0:
            raise AlgorithmError("retry_backoff must be >= 1")
        if self.max_retries < 0:
            raise AlgorithmError("max_retries must be >= 0")
        if self.step_interval <= 0:
            raise AlgorithmError("step_interval must be > 0")

    def fault_time(self, step: int) -> float:
        """Wall-clock time at which schedule step ``step`` fires."""
        return step * self.step_interval

    def retry_delay(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        return self.retry_timeout * self.retry_backoff ** (attempt - 1)

    def to_params(self) -> dict:
        """JSON-safe form for ledger records and cache keys."""
        return {
            "detection_delay": self.detection_delay,
            "control_rtt": self.control_rtt,
            "fib_install": self.fib_install,
            "link_delay": self.link_delay,
            "mrai": self.mrai,
            "loss_prob": self.loss_prob,
            "retry_timeout": self.retry_timeout,
            "retry_backoff": self.retry_backoff,
            "max_retries": self.max_retries,
            "step_interval": self.step_interval,
        }


class EventQueue:
    """Deterministic discrete-event queue on stdlib ``heapq``.

    Entries are ``(time, priority, seq, payload)``: ties on time break
    by event-class priority, then by insertion order — a total order,
    so two runs that push the same events pop them identically and the
    whole simulation replays bit-for-bit.  Scheduling into the past is
    an error (it would silently reorder history).
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, int, tuple]] = []
        self._seq = 0
        self._now = 0.0

    @property
    def now(self) -> float:
        """Time of the most recently popped event."""
        return self._now

    def push(self, time: float, priority: int, payload: tuple) -> None:
        if time < self._now:
            raise AlgorithmError(
                f"cannot schedule event at {time} before now={self._now}"
            )
        heapq.heappush(self._heap, (float(time), int(priority), self._seq, payload))
        self._seq += 1

    def pop(self) -> tuple[float, tuple]:
        if not self._heap:
            raise AlgorithmError("pop from empty event queue")
        time, _, _, payload = heapq.heappop(self._heap)
        self._now = time
        return time, payload

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


class DarknessIntegrator:
    """Integrates the piecewise-constant dark-pair fraction over time.

    ``update(t, dark)`` closes the interval since the previous change at
    the old level and records the new one; ``finish(t)`` closes the last
    interval and returns pair-seconds-dark (the area under the curve —
    "fraction of baseline-connected pairs" × seconds).  The recorded
    ``timeline`` keeps one ``(time, dark)`` sample per level change,
    which is exactly the staircase the dashboard plots.

    Disruption landmarks fall out of the same stream: the first rise
    above zero darkness is the disruption start, the first subsequent
    *decrease* is the first repair taking effect, and the last change of
    any kind is full convergence (quiescence may still be dark when
    repair was impossible — graceful degradation, not an error).
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._last_time = start_time
        self._last_dark = 0.0
        self._area = 0.0
        self.timeline: list[tuple[float, float]] = [(start_time, 0.0)]
        self.first_dark_time: float | None = None
        self.first_repair_time: float | None = None
        self.last_change_time: float | None = None

    @property
    def current(self) -> float:
        return self._last_dark

    def update(self, time: float, dark: float) -> None:
        if time < self._last_time:
            raise AlgorithmError("darkness updates must be time-ordered")
        if dark == self._last_dark:
            return
        self._area += (time - self._last_time) * self._last_dark
        if dark > 0.0 and self.first_dark_time is None:
            self.first_dark_time = time
        if dark < self._last_dark and self.first_repair_time is None:
            self.first_repair_time = time
        self.last_change_time = time
        self._last_time = time
        self._last_dark = dark
        self.timeline.append((time, dark))

    def finish(self, time: float) -> float:
        """Close the integral at ``time`` and return pair-seconds-dark."""
        if time < self._last_time:
            raise AlgorithmError("cannot finish before the last update")
        self._area += (time - self._last_time) * self._last_dark
        self._last_time = time
        return self._area
