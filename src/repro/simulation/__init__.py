"""Dynamic-system substrate: topology churn + the brokered SLA marketplace."""

from repro.simulation.churn import (
    ChurnEvent,
    ChurnTrace,
    IncrementalBrokerSet,
    IncrementalBrokerSetReference,
    MutableTopology,
    generate_churn_trace,
)
from repro.simulation.marketplace import (
    MarketplaceReport,
    ServiceRequest,
    simulate_marketplace,
)

__all__ = [
    "ChurnEvent",
    "ChurnTrace",
    "generate_churn_trace",
    "IncrementalBrokerSet",
    "IncrementalBrokerSetReference",
    "MutableTopology",
    "ServiceRequest",
    "MarketplaceReport",
    "simulate_marketplace",
]
