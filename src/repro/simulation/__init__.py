"""Dynamic-system substrate: churn, the SLA marketplace, and convergence.

:mod:`repro.simulation.convergence` is imported lazily by its users —
it pulls in the resilience and routing layers, which some lightweight
churn consumers do not need.
"""

from repro.simulation.churn import (
    ChurnEvent,
    ChurnTrace,
    IncrementalBrokerSet,
    IncrementalBrokerSetReference,
    MutableTopology,
    generate_churn_trace,
)
from repro.simulation.marketplace import (
    MarketplaceReport,
    ServiceRequest,
    simulate_marketplace,
)

__all__ = [
    "ChurnEvent",
    "ChurnTrace",
    "generate_churn_trace",
    "IncrementalBrokerSet",
    "IncrementalBrokerSetReference",
    "MutableTopology",
    "ServiceRequest",
    "MarketplaceReport",
    "simulate_marketplace",
]
