"""Algorithm 1 — greedy ``(1 − 1/e)``-approximation for the MCB problem.

Two implementations of the same selection rule:

* :func:`greedy_max_coverage` — the textbook loop from the paper's
  Algorithm 1, recomputing every marginal gain each round:
  ``O(k (|V| + |E|))``.
* :func:`lazy_greedy_max_coverage` — CELF-style lazy evaluation exploiting
  submodularity: a vertex's cached gain can only shrink, so the heap only
  re-evaluates candidates whose stale bound still tops the heap.  Orders of
  magnitude fewer gain evaluations on scale-free graphs, identical output
  (ties broken by vertex id in both variants).

Both return the brokers in selection order, which Fig. 2b's sweep uses to
evaluate every prefix of a single run.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.core.coverage import CoverageOracle
from repro.exceptions import AlgorithmError
from repro.graph.asgraph import ASGraph
from repro.obs import add_counter, get_tracer, profiled


def _validate_budget(graph: ASGraph, budget: int) -> None:
    if budget < 1:
        raise AlgorithmError(f"budget must be >= 1, got {budget}")
    if budget > graph.num_nodes:
        raise AlgorithmError(
            f"budget {budget} exceeds the number of vertices {graph.num_nodes}"
        )


@profiled("kernel.greedy")
def greedy_max_coverage(
    graph: ASGraph,
    budget: int,
    *,
    candidates: np.ndarray | None = None,
) -> list[int]:
    """Plain greedy MCB (paper Algorithm 1).

    Each of the ``budget`` rounds picks the candidate with the largest
    marginal coverage gain, breaking ties towards the smallest vertex id
    (making the output deterministic).  Stops early when everything is
    covered.  ``candidates`` restricts the selectable pool (used by the
    IXP-only variants and by tests).
    """
    _validate_budget(graph, budget)
    pool = (
        np.arange(graph.num_nodes)
        if candidates is None
        else np.unique(np.asarray(candidates, dtype=np.int64))
    )
    if len(pool) == 0:
        raise AlgorithmError("candidate pool is empty")
    tracer = get_tracer()
    evaluations = 0
    oracle = CoverageOracle(graph)
    chosen: list[int] = []
    chosen_mask = np.zeros(graph.num_nodes, dtype=bool)
    for round_no in range(budget):
        with tracer.span("greedy.round", round=round_no) as span:
            best_v, best_gain = -1, 0
            for v in pool:
                if chosen_mask[v]:
                    continue
                evaluations += 1
                gain = oracle.marginal_gain(int(v))
                if gain > best_gain:
                    best_v, best_gain = int(v), gain
            if best_v < 0:
                break  # nothing adds coverage — all reachable vertices covered
            oracle.add(best_v)
            chosen.append(best_v)
            chosen_mask[best_v] = True
            span.set(vertex=best_v, gain=best_gain)
    add_counter("kernel.greedy.gain_evaluations", evaluations)
    add_counter("kernel.greedy.rounds", len(chosen))
    return chosen


@profiled("kernel.lazy_greedy")
def lazy_greedy_max_coverage(
    graph: ASGraph,
    budget: int,
    *,
    candidates: np.ndarray | None = None,
) -> list[int]:
    """Lazy (CELF) greedy MCB — same output as :func:`greedy_max_coverage`.

    Maintains a max-heap of ``(-cached_gain, vertex)``.  Because ``f`` is
    submodular, cached gains are upper bounds; a popped entry whose gain is
    stale is re-evaluated and pushed back.  An entry that is fresh (its
    recomputed gain equals the cached one) is optimal for this round.
    """
    _validate_budget(graph, budget)
    pool = (
        np.arange(graph.num_nodes)
        if candidates is None
        else np.unique(np.asarray(candidates, dtype=np.int64))
    )
    if len(pool) == 0:
        raise AlgorithmError("candidate pool is empty")
    tracer = get_tracer()
    evaluations = 0
    repops = 0
    oracle = CoverageOracle(graph)
    # Initial gains are the closed-neighbourhood sizes.
    degrees = graph.degrees()
    heap: list[tuple[int, int]] = [(-(int(degrees[v]) + 1), int(v)) for v in pool]
    heapq.heapify(heap)
    stale = np.zeros(graph.num_nodes, dtype=np.int64)  # round the gain was cached in
    round_no = 0
    chosen: list[int] = []
    done = False
    # Outer loop = one selection round; the inner loop pops (and lazily
    # re-evaluates) candidates until one is fresh at the top of the heap.
    while heap and len(chosen) < budget and not done:
        with tracer.span("lazy_greedy.round", round=round_no) as span:
            while True:
                if not heap:
                    done = True
                    break
                neg_gain, v = heapq.heappop(heap)
                if stale[v] != round_no:
                    evaluations += 1
                    gain = oracle.marginal_gain(v)
                    stale[v] = round_no
                    if gain > 0:
                        repops += 1
                        heapq.heappush(heap, (-gain, v))
                    continue
                if -neg_gain <= 0:
                    done = True
                    break
                oracle.add(v)
                chosen.append(v)
                round_no += 1
                span.set(vertex=v, gain=-neg_gain)
                break
    add_counter("kernel.lazy_greedy.gain_evaluations", evaluations)
    add_counter("kernel.lazy_greedy.heap_repops", repops)
    add_counter("kernel.lazy_greedy.rounds", len(chosen))
    return chosen


def greedy_with_trace(
    graph: ASGraph, budget: int
) -> tuple[list[int], list[int]]:
    """Lazy greedy plus the realized gain of every selection.

    Returns ``(brokers, gains)``; ``np.cumsum(gains)`` is the coverage
    curve ``f(B_1), f(B_2), …`` used by the marginal-effect analyses
    (Fig. 3's narrative).
    """
    _validate_budget(graph, budget)
    brokers = lazy_greedy_max_coverage(graph, budget)
    oracle = CoverageOracle(graph)
    gains = [oracle.add(v) for v in brokers]
    return brokers, gains
