"""Bitset backend for the coverage kernels (Algorithm 1 twins).

Closed neighborhoods are precomputed once per graph as an ``(n, words)``
``uint64`` block matrix — row ``u`` is the mask ``{u} ∪ N(u)`` — plus a
python-int view of every row for the heap-driven kernels.  With those in
hand the two greedy selection rules become pure mask algebra:

* :func:`bitset_greedy_max_coverage` — paper Algorithm 1, with the whole
  candidate pool's marginal gains evaluated in one batched
  AND + popcount per round (:func:`batched_marginal_gains`);
* :func:`bitset_lazy_greedy_max_coverage` — the CELF lazy variant; a
  gain re-evaluation is one ``(mask & uncovered).bit_count()``.

Both are pinned bit-identical to their pure-python twins in
:mod:`repro.core.greedy` by the differential suite
(``tests/core/test_backend_differential.py``): same rosters, same
selection order, same tie-breaks (ties go to the smallest vertex id in
all four implementations).

The per-graph mask tables are cached in an ``id()``-keyed registry with
weakref eviction — :class:`~repro.graph.asgraph.ASGraph` is a frozen
dataclass holding ndarrays, so it is weakref-able but not hashable.
"""

from __future__ import annotations

import heapq
import weakref

import numpy as np

from repro.exceptions import AlgorithmError
from repro.graph.asgraph import ASGraph
from repro.graph.bitset import (
    bitwise_count,
    blocks_to_mask,
    num_words,
)
from repro.obs import add_counter, get_tracer, profiled

_BLOCK_CACHE: dict[int, tuple[weakref.ref, np.ndarray]] = {}
_MASK_CACHE: dict[int, tuple[weakref.ref, list[int]]] = {}


def _cache_get(cache: dict, graph: ASGraph):
    entry = cache.get(id(graph))
    if entry is not None and entry[0]() is graph:
        return entry[1]
    return None


def _cache_put(cache: dict, graph: ASGraph, value) -> None:
    key = id(graph)

    def _evict(_ref, *, _key=key, _cache=cache):
        _cache.pop(_key, None)

    cache[key] = (weakref.ref(graph, _evict), value)


def closed_neighborhood_blocks(graph: ASGraph) -> np.ndarray:
    """``(n, num_words(n))`` uint64 matrix; row ``u`` masks ``{u} ∪ N(u)``.

    Built once per graph (grouped segmented OR over the CSR edge list)
    and cached for the graph's lifetime; treat the result as read-only.
    """
    cached = _cache_get(_BLOCK_CACHE, graph)
    if cached is not None:
        return cached
    n = graph.num_nodes
    words = max(num_words(n), 1)
    indptr = graph.adj.indptr
    self_ids = np.arange(n, dtype=np.int64)
    src = np.concatenate(
        [np.repeat(self_ids, np.diff(indptr)), self_ids]
    )
    dst = np.concatenate([graph.adj.indices.astype(np.int64), self_ids])
    # Group the (row, word) cells, OR each group's bit values in one
    # reduceat, then scatter into the flat table.
    key = src * words + (dst >> 6)
    order = np.argsort(key, kind="stable")
    key = key[order]
    bitval = np.uint64(1) << (dst[order] & 63).astype(np.uint64)
    cells, starts = np.unique(key, return_index=True)
    blocks = np.zeros(n * words, dtype=np.uint64)
    if len(cells):
        blocks[cells] = np.bitwise_or.reduceat(bitval, starts)
    table = blocks.reshape(n, words)
    add_counter("kernel.bitset.mask_builds")
    _cache_put(_BLOCK_CACHE, graph, table)
    return table


def closed_neighborhood_masks(graph: ASGraph) -> list[int]:
    """Python-int view of :func:`closed_neighborhood_blocks` (cached)."""
    cached = _cache_get(_MASK_CACHE, graph)
    if cached is not None:
        return cached
    blocks = closed_neighborhood_blocks(graph)
    masks = [blocks_to_mask(row) for row in blocks]
    _cache_put(_MASK_CACHE, graph, masks)
    return masks


def batched_marginal_gains(
    nbhd_blocks: np.ndarray, uncovered_blocks: np.ndarray
) -> np.ndarray:
    """Marginal coverage gain of every row of ``nbhd_blocks`` at once.

    ``gains[i] = |N[v_i] ∩ uncovered|`` — one vectorized AND + popcount
    over the whole candidate pool, the batched-evaluation primitive the
    plain greedy loop (and anything scanning many candidates) uses.
    """
    return bitwise_count(nbhd_blocks & uncovered_blocks).sum(
        axis=1, dtype=np.int64
    )


def _validate_budget(graph: ASGraph, budget: int) -> None:
    if budget < 1:
        raise AlgorithmError(f"budget must be >= 1, got {budget}")
    if budget > graph.num_nodes:
        raise AlgorithmError(
            f"budget {budget} exceeds the number of vertices {graph.num_nodes}"
        )


def _uncovered_blocks(n: int) -> np.ndarray:
    """Block mask of the full universe ``{0, .., n-1}``."""
    blocks = np.full(max(num_words(n), 1), ~np.uint64(0), dtype=np.uint64)
    tail = n & 63
    if tail:
        blocks[-1] = (np.uint64(1) << np.uint64(tail)) - np.uint64(1)
    if n == 0:
        blocks[:] = np.uint64(0)
    return blocks


@profiled("kernel.bitset_greedy")
def bitset_greedy_max_coverage(
    graph: ASGraph,
    budget: int,
    *,
    candidates: np.ndarray | None = None,
) -> list[int]:
    """Bitset twin of :func:`repro.core.greedy.greedy_max_coverage`.

    Identical selection rule and tie-breaks: each round takes the
    ``argmax`` of the batched gains, which resolves ties to the smallest
    vertex id exactly like the python loop's strict ``>`` comparison
    over an ascending pool.
    """
    _validate_budget(graph, budget)
    pool = (
        np.arange(graph.num_nodes)
        if candidates is None
        else np.unique(np.asarray(candidates, dtype=np.int64))
    )
    if len(pool) == 0:
        raise AlgorithmError("candidate pool is empty")
    tracer = get_tracer()
    blocks = closed_neighborhood_blocks(graph)
    cand_blocks = blocks[pool]
    uncovered = _uncovered_blocks(graph.num_nodes)
    chosen: list[int] = []
    for round_no in range(budget):
        with tracer.span("bitset_greedy.round", round=round_no) as span:
            gains = batched_marginal_gains(cand_blocks, uncovered)
            best = int(gains.argmax())
            if gains[best] == 0:
                break  # nothing adds coverage
            v = int(pool[best])
            chosen.append(v)
            uncovered &= ~blocks[v]
            span.set(vertex=v, gain=int(gains[best]))
    add_counter("kernel.bitset_greedy.gain_evaluations", len(pool) * len(chosen))
    add_counter("kernel.bitset_greedy.rounds", len(chosen))
    return chosen


@profiled("kernel.bitset_lazy_greedy")
def bitset_lazy_greedy_max_coverage(
    graph: ASGraph,
    budget: int,
    *,
    candidates: np.ndarray | None = None,
) -> list[int]:
    """Bitset twin of :func:`repro.core.greedy.lazy_greedy_max_coverage`.

    Mirrors the CELF control flow exactly — same initial degree bounds,
    same stale-round bookkeeping, same heap order — so the selection
    sequence is bit-identical; only the gain oracle changes, to one
    AND + popcount over python-int masks.
    """
    _validate_budget(graph, budget)
    pool = (
        np.arange(graph.num_nodes)
        if candidates is None
        else np.unique(np.asarray(candidates, dtype=np.int64))
    )
    if len(pool) == 0:
        raise AlgorithmError("candidate pool is empty")
    tracer = get_tracer()
    evaluations = 0
    repops = 0
    masks = closed_neighborhood_masks(graph)
    uncovered = (1 << graph.num_nodes) - 1
    degrees = graph.degrees()
    heap: list[tuple[int, int]] = [(-(int(degrees[v]) + 1), int(v)) for v in pool]
    heapq.heapify(heap)
    stale = np.zeros(graph.num_nodes, dtype=np.int64)
    round_no = 0
    chosen: list[int] = []
    done = False
    while heap and len(chosen) < budget and not done:
        with tracer.span("bitset_lazy_greedy.round", round=round_no) as span:
            while True:
                if not heap:
                    done = True
                    break
                neg_gain, v = heapq.heappop(heap)
                if stale[v] != round_no:
                    evaluations += 1
                    gain = (masks[v] & uncovered).bit_count()
                    stale[v] = round_no
                    if gain > 0:
                        repops += 1
                        heapq.heappush(heap, (-gain, v))
                    continue
                if -neg_gain <= 0:
                    done = True
                    break
                uncovered &= ~masks[v]
                chosen.append(v)
                round_no += 1
                span.set(vertex=v, gain=-neg_gain)
                break
    add_counter("kernel.bitset_lazy_greedy.gain_evaluations", evaluations)
    add_counter("kernel.bitset_lazy_greedy.heap_repops", repops)
    add_counter("kernel.bitset_lazy_greedy.rounds", len(chosen))
    return chosen
