"""Exact (brute-force) solvers for tiny instances.

MCB and MCBG are NP-hard (Lemmas 1–2, Theorem 2); these exponential
solvers exist to *certify* the polynomial algorithms on small graphs:

* the greedy Algorithm 1 must achieve ``>= (1 − 1/e) · OPT_MCB``;
* Algorithm 2 and MaxSG must be feasible for MCBG and compare sensibly
  against ``OPT_MCBG``;
* the PDS decision answer validates :func:`solve_pds_greedy`'s certificate.

All solvers enumerate ``C(|V|, k)`` subsets — keep ``|V|`` under ~20.
"""

from __future__ import annotations

from itertools import combinations

from repro.core.problems import MCBGInstance, MCBInstance, PDSInstance
from repro.exceptions import AlgorithmError
from repro.graph.asgraph import ASGraph

_MAX_EXACT_NODES = 24


def _guard(graph: ASGraph, k: int) -> None:
    if graph.num_nodes > _MAX_EXACT_NODES:
        raise AlgorithmError(
            f"exact solver limited to {_MAX_EXACT_NODES} vertices, "
            f"got {graph.num_nodes}"
        )
    if not 1 <= k <= graph.num_nodes:
        raise AlgorithmError(f"k={k} out of range")


def exact_mcb(graph: ASGraph, k: int) -> tuple[list[int], int]:
    """Optimal MCB solution by exhaustive search.

    Returns ``(brokers, f(B))`` with the lexicographically-smallest
    optimal subset, so the result is deterministic for tests.
    """
    _guard(graph, k)
    instance = MCBInstance(graph, k)
    best: tuple[list[int], int] | None = None
    for subset in combinations(range(graph.num_nodes), k):
        value = instance.objective(subset)
        if best is None or value > best[1]:
            best = (list(subset), value)
        if best[1] == graph.num_nodes:
            break  # cannot do better than full coverage
    assert best is not None
    return best


def exact_mcbg(graph: ASGraph, k: int) -> tuple[list[int], int]:
    """Optimal MCBG solution by exhaustive search over feasible subsets."""
    _guard(graph, k)
    instance = MCBGInstance(graph, k)
    best: tuple[list[int], int] | None = None
    for size in range(1, k + 1):
        for subset in combinations(range(graph.num_nodes), size):
            if not instance.is_feasible_solution(subset):
                continue
            value = instance.objective(subset)
            if best is None or value > best[1]:
                best = (list(subset), value)
    if best is None:
        raise AlgorithmError("no feasible MCBG solution found (empty graph?)")
    return best


def exact_pds(graph: ASGraph, k: int) -> list[int] | None:
    """Decide PDS exactly; returns a certificate or ``None`` (infeasible)."""
    _guard(graph, k)
    instance = PDSInstance(graph, k)
    for size in range(1, k + 1):
        for subset in combinations(range(graph.num_nodes), size):
            if instance.is_feasible_solution(subset):
                return list(subset)
    return None
