"""The coverage set function ``f(B) = |B ∪ N(B)|`` and its oracle.

Every selection algorithm in the paper optimizes (or is evaluated by) this
function: a vertex is *covered* by a broker set ``B`` when it is a broker
or adjacent to one, i.e., it can reach the brokerage with a first-hop SLA.
``f`` is monotone and submodular (Lemma 3), which is what buys Algorithm
1's ``(1 - 1/e)`` guarantee.

:class:`CoverageOracle` supports the incremental access pattern the greedy
algorithms need — O(deg(v)) marginal-gain queries and O(deg(v)) updates —
without recomputing neighbourhood unions from scratch.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.exceptions import AlgorithmError
from repro.graph.asgraph import ASGraph
from repro.obs import add_counter


class CoverageOracle:
    """Incremental evaluator of ``f(B) = |B ∪ N(B)|`` over a fixed graph.

    The oracle keeps a boolean ``covered`` array; adding broker ``v`` marks
    ``{v} ∪ N(v)``.  ``marginal_gain(v)`` counts how many *new* vertices
    ``v`` would cover — the quantity maximized by each greedy step of
    Algorithm 1 (and, restricted to a frontier, by Algorithm 3).
    """

    def __init__(self, graph: ASGraph) -> None:
        self._graph = graph
        self._covered = np.zeros(graph.num_nodes, dtype=bool)
        self._brokers: list[int] = []

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def graph(self) -> ASGraph:
        return self._graph

    @property
    def brokers(self) -> list[int]:
        """Brokers added so far, in insertion order."""
        return list(self._brokers)

    @property
    def covered_mask(self) -> np.ndarray:
        """Read-only view of the covered indicator (do not mutate)."""
        return self._covered

    def coverage(self) -> int:
        """Current value of ``f(B)``."""
        return int(np.count_nonzero(self._covered))

    def coverage_fraction(self) -> float:
        """``f(B) / |V|``."""
        n = self._graph.num_nodes
        return self.coverage() / n if n else 0.0

    def is_covered(self, v: int) -> bool:
        return bool(self._covered[v])

    # ------------------------------------------------------------------
    # Queries and updates
    # ------------------------------------------------------------------
    def marginal_gain(self, v: int) -> int:
        """``f(B ∪ {v}) − f(B)`` in O(deg(v))."""
        gain = 0 if self._covered[v] else 1
        neigh = self._graph.neighbors(v)
        gain += int(np.count_nonzero(~self._covered[neigh]))
        return gain

    def add(self, v: int) -> int:
        """Add broker ``v``; returns the realized marginal gain."""
        if not 0 <= v < self._graph.num_nodes:
            raise AlgorithmError(f"broker id {v} out of range")
        gain = self.marginal_gain(v)
        self._covered[v] = True
        self._covered[self._graph.neighbors(v)] = True
        self._brokers.append(int(v))
        return gain

    def uncovered_count(self) -> int:
        return self._graph.num_nodes - self.coverage()


def coverage_value(graph: ASGraph, brokers: Iterable[int]) -> int:
    """One-shot ``f(B)`` for an arbitrary broker collection."""
    add_counter("kernel.coverage.value_calls")
    covered = covered_mask(graph, brokers)
    return int(np.count_nonzero(covered))


def covered_mask(graph: ASGraph, brokers: Iterable[int]) -> np.ndarray:
    """Boolean indicator of ``B ∪ N(B)``."""
    covered = np.zeros(graph.num_nodes, dtype=bool)
    for v in brokers:
        if not 0 <= v < graph.num_nodes:
            raise AlgorithmError(f"broker id {v} out of range")
        covered[v] = True
        covered[graph.neighbors(v)] = True
    return covered


def coverage_fraction(graph: ASGraph, brokers: Iterable[int]) -> float:
    """``f(B) / |V|`` for an arbitrary broker collection."""
    n = graph.num_nodes
    return coverage_value(graph, brokers) / n if n else 0.0
