"""The coverage set function ``f(B) = |B ∪ N(B)|`` and its oracle.

Every selection algorithm in the paper optimizes (or is evaluated by) this
function: a vertex is *covered* by a broker set ``B`` when it is a broker
or adjacent to one, i.e., it can reach the brokerage with a first-hop SLA.
``f`` is monotone and submodular (Lemma 3), which is what buys Algorithm
1's ``(1 - 1/e)`` guarantee.

:class:`CoverageOracle` supports the incremental access pattern the greedy
algorithms need — O(deg(v)) marginal-gain queries and O(deg(v)) updates —
as a thin adapter over :class:`repro.core.engine.DominationEngine`, the
shared mutable coverage/domination state.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.core.engine import DominationEngine
from repro.exceptions import AlgorithmError
from repro.graph.asgraph import ASGraph
from repro.obs import add_counter


class CoverageOracle:
    """Incremental evaluator of ``f(B) = |B ∪ N(B)|`` over a fixed graph.

    Adding broker ``v`` marks ``{v} ∪ N(v)`` covered inside the backing
    :class:`~repro.core.engine.DominationEngine`; ``marginal_gain(v)``
    counts how many *new* vertices ``v`` would cover — the quantity
    maximized by each greedy step of Algorithm 1 (and, restricted to a
    frontier, by Algorithm 3).
    """

    def __init__(self, graph: ASGraph) -> None:
        self._graph = graph
        self._engine = DominationEngine(graph)
        self._brokers: list[int] = []

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def graph(self) -> ASGraph:
        return self._graph

    @property
    def engine(self) -> DominationEngine:
        """The backing mutable domination state."""
        return self._engine

    @property
    def brokers(self) -> list[int]:
        """Brokers added so far, in insertion order."""
        return list(self._brokers)

    @property
    def covered_mask(self) -> np.ndarray:
        """Read-only view of the covered indicator (do not mutate)."""
        return self._engine.covered_view

    def coverage(self) -> int:
        """Current value of ``f(B)``."""
        return self._engine.coverage()

    def coverage_fraction(self) -> float:
        """``f(B) / |V|``."""
        return self._engine.coverage_fraction()

    def is_covered(self, v: int) -> bool:
        return self._engine.is_covered(v)

    # ------------------------------------------------------------------
    # Queries and updates
    # ------------------------------------------------------------------
    def marginal_gain(self, v: int) -> int:
        """``f(B ∪ {v}) − f(B)`` in O(deg(v))."""
        return self._engine.marginal_gain(int(v))

    def add(self, v: int) -> int:
        """Add broker ``v``; returns the realized marginal gain."""
        if not 0 <= v < self._graph.num_nodes:
            raise AlgorithmError(f"broker id {v} out of range")
        newly = self._engine.add_broker(int(v))
        self._brokers.append(int(v))
        return len(newly)

    def uncovered_count(self) -> int:
        return self._graph.num_nodes - self.coverage()


def coverage_value(graph: ASGraph, brokers: Iterable[int]) -> int:
    """One-shot ``f(B)`` for an arbitrary broker collection."""
    add_counter("kernel.coverage.value_calls")
    covered = covered_mask(graph, brokers)
    return int(np.count_nonzero(covered))


def covered_mask(graph: ASGraph, brokers: Iterable[int]) -> np.ndarray:
    """Boolean indicator of ``B ∪ N(B)``."""
    covered = np.zeros(graph.num_nodes, dtype=bool)
    for v in brokers:
        if not 0 <= v < graph.num_nodes:
            raise AlgorithmError(f"broker id {v} out of range")
        covered[v] = True
        covered[graph.neighbors(v)] = True
    return covered


def coverage_fraction(graph: ASGraph, brokers: Iterable[int]) -> float:
    """``f(B) / |V|`` for an arbitrary broker collection."""
    n = graph.num_nodes
    return coverage_value(graph, brokers) / n if n else 0.0
