"""High-level broker selection API.

:class:`BrokerSelector` is the façade downstream users interact with: pick
an algorithm by name, get back a :class:`SelectionResult` bundling the
broker set with its evaluation (coverage, saturated connectivity, MCBG
feasibility) so the common workflow is three lines::

    graph = load_internet("small", seed=0)
    result = BrokerSelector(graph).select("maxsg", budget=60)
    print(result.summary())

Algorithms resolve through :mod:`repro.core.registry`; the built-in
registrations are:

=============  ==========================================================
name           implementation
=============  ==========================================================
``greedy``     Algorithm 1 (lazy greedy MCB)
``approx``     Algorithm 2 (MCBG approximation on an (α, β)-graph)
``maxsg``      Algorithm 3 (MaxSubGraph-Greedy)
``sc``         randomized Set-Cover dominating set
``ixp``        IXPs above a degree threshold
``tier1``      tier-1 ISPs only
``degree``     Degree-Based top-k
``pagerank``   PageRank-Based top-k
``random``     uniform sample
=============  ==========================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import registry
from repro.core.connectivity import connectivity_curve, saturated_connectivity
from repro.core.coverage import coverage_fraction, coverage_value
from repro.core.domination import brokers_mutually_connected
from repro.graph.asgraph import ASGraph
from repro.utils.rng import SeedLike

#: Algorithms that require a ``budget`` argument (registry order).
BUDGETED_ALGORITHMS = registry.algorithm_names(budgeted=True)
#: Algorithms whose size is determined by the graph itself.
UNBUDGETED_ALGORITHMS = registry.algorithm_names(budgeted=False)
ALL_ALGORITHMS = BUDGETED_ALGORITHMS + UNBUDGETED_ALGORITHMS


@dataclass(frozen=True)
class SelectionResult:
    """A broker set plus its headline evaluation."""

    algorithm: str
    broker_set: list[int]
    coverage: int
    coverage_fraction: float
    saturated_connectivity: float
    mcbg_feasible: bool
    parameters: dict = field(default_factory=dict)

    @property
    def size(self) -> int:
        return len(self.broker_set)

    def summary(self) -> str:
        """One-line human-readable report."""
        return (
            f"{self.algorithm}: |B|={self.size}, "
            f"coverage={100 * self.coverage_fraction:.2f}%, "
            f"saturated connectivity={100 * self.saturated_connectivity:.2f}%, "
            f"MCBG-feasible={self.mcbg_feasible}"
        )


class BrokerSelector:
    """Runs any registered selection algorithm on a fixed topology."""

    def __init__(self, graph: ASGraph) -> None:
        self._graph = graph

    @property
    def graph(self) -> ASGraph:
        return self._graph

    def select(
        self,
        algorithm: str,
        budget: int | None = None,
        *,
        beta: int = 4,
        seed: SeedLike = 0,
        degree_threshold: int = 0,
        evaluate: bool = True,
        cache=None,
        backend: str | None = None,
    ) -> SelectionResult:
        """Run ``algorithm`` and evaluate the resulting broker set.

        ``budget`` is mandatory for the budgeted algorithms and ignored by
        ``sc`` / ``ixp`` / ``tier1``.  ``evaluate=False`` skips the
        connectivity evaluation (useful inside parameter sweeps that will
        evaluate in bulk later).

        ``cache`` (a :class:`repro.parallel.ResultCache`) memoizes the
        whole selection+evaluation on disk, keyed by the graph digest and
        every selection knob.  Only integer/None seeds are cacheable — a
        live ``Generator`` has unknowable state, so it bypasses the cache.

        ``backend`` picks the kernel backend
        (:func:`repro.core.registry.resolve_backend` semantics).  Every
        backend produces bit-identical broker sets; the resolved name
        still enters the cache key so a run's provenance is explicit.
        """
        graph = self._graph
        spec = registry.get_algorithm(algorithm)
        resolved_backend = registry.resolve_backend(backend)
        declared = {p.name for p in spec.params}
        knobs = {
            name: value
            for name, value in (
                ("beta", beta),
                ("seed", seed),
                ("degree_threshold", degree_threshold),
            )
            if name in declared
        }
        cache_params = None
        if cache is not None and (seed is None or isinstance(seed, int)):
            # Only knobs the algorithm declares enter the key, so runs
            # that differ in an irrelevant knob share one cache entry.
            cache_params = {
                "algorithm": algorithm,
                "budget": budget,
                "evaluate": evaluate,
                "backend": resolved_backend,
                "params": registry.canonical_params(algorithm, knobs),
            }
            hit = cache.get(
                graph_digest=graph.digest(),
                algorithm="broker-selection",
                params=cache_params,
            )
            if hit is not None:
                return SelectionResult(
                    algorithm=str(hit["algorithm"]),
                    broker_set=[int(b) for b in hit["broker_set"]],
                    coverage=int(hit["coverage"]),
                    coverage_fraction=float(hit["coverage_fraction"]),
                    saturated_connectivity=float(hit["saturated_connectivity"]),
                    mcbg_feasible=bool(hit["mcbg_feasible"]),
                    parameters=dict(hit["parameters"]),
                )
        brokers, params = registry.run_algorithm(
            algorithm, graph, budget, backend=resolved_backend, **knobs
        )

        if not evaluate:
            result = SelectionResult(
                algorithm=algorithm,
                broker_set=brokers,
                coverage=0,
                coverage_fraction=0.0,
                saturated_connectivity=0.0,
                mcbg_feasible=False,
                parameters=params,
            )
        else:
            result = self.evaluate(brokers, algorithm=algorithm, parameters=params)
        if cache_params is not None:
            cache.put(
                {
                    "algorithm": result.algorithm,
                    "broker_set": result.broker_set,
                    "coverage": result.coverage,
                    "coverage_fraction": result.coverage_fraction,
                    "saturated_connectivity": result.saturated_connectivity,
                    "mcbg_feasible": result.mcbg_feasible,
                    "parameters": result.parameters,
                },
                graph_digest=graph.digest(),
                algorithm="broker-selection",
                params=cache_params,
            )
        return result

    def evaluate(
        self,
        brokers: list[int],
        *,
        algorithm: str = "custom",
        parameters: dict | None = None,
    ) -> SelectionResult:
        """Evaluate an arbitrary broker set under the standard metrics."""
        graph = self._graph
        brokers = list(dict.fromkeys(int(b) for b in brokers))
        sat = saturated_connectivity(graph, brokers) if brokers else 0.0
        return SelectionResult(
            algorithm=algorithm,
            broker_set=brokers,
            coverage=coverage_value(graph, brokers) if brokers else 0,
            coverage_fraction=coverage_fraction(graph, brokers) if brokers else 0.0,
            saturated_connectivity=sat,
            mcbg_feasible=(
                brokers_mutually_connected(graph, brokers) if brokers else False
            ),
            parameters=parameters or {},
        )

    def connectivity_curve(
        self,
        brokers: list[int] | None,
        *,
        max_hops: int = 8,
        num_sources: int | None = None,
        seed: SeedLike = 0,
        backend: str | None = None,
    ):
        """l-hop connectivity curve (delegates to the engine)."""
        return connectivity_curve(
            self._graph,
            brokers,
            max_hops=max_hops,
            num_sources=num_sources,
            seed=seed,
            backend=backend,
        )
