"""Broker-failure robustness analysis (deployment hardening).

A real brokerage coalition loses members — outages, de-peering, ASes
leaving the alliance (Section 7.2's stability analysis is about exactly
that temptation).  This module quantifies how gracefully a broker set's
E2E guarantee degrades and how to buy insurance:

* :func:`failure_sweep` — remove random or targeted (highest-coverage)
  brokers and track the saturated connectivity curve;
* :func:`coverage_contribution_order` — brokers ordered by the marginal
  coverage each one actually provides (the adversary's hit list);
* :func:`redundant_greedy` — an ``r``-redundant variant of Algorithm 1:
  a vertex only counts as covered once ``r`` distinct brokers are in its
  closed neighbourhood, so any single failure leaves every covered
  vertex covered (classic multi-cover, still submodular, so greedy keeps
  a ``(1 − 1/e)`` guarantee);
* :func:`single_failure_impact` — the worst-case connectivity drop over
  all single-broker removals.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.connectivity import saturated_connectivity
from repro.core.engine import DominationEngine
from repro.exceptions import AlgorithmError
from repro.graph.asgraph import ASGraph
from repro.graph.csr import build_csr
from repro.utils.rng import SeedLike, ensure_rng


@dataclass(frozen=True)
class FailureSweepResult:
    """Connectivity after removing ``k`` brokers, for ``k = 0..max``."""

    removed: np.ndarray
    connectivity: np.ndarray
    strategy: str

    def drop_at(self, k: int) -> float:
        """Connectivity lost after ``k`` failures."""
        idx = int(np.searchsorted(self.removed, k))
        if idx >= len(self.removed) or self.removed[idx] != k:
            raise AlgorithmError(f"sweep does not include k={k}")
        return float(self.connectivity[0] - self.connectivity[idx])


def broker_hit_counts(graph: ASGraph, brokers: list[int]) -> np.ndarray:
    """Per-vertex count of brokers inside the closed neighbourhood N[v].

    This is exactly the hit-count state a
    :class:`~repro.core.engine.DominationEngine` maintains incrementally.
    """
    engine = DominationEngine(graph, dict.fromkeys(int(b) for b in brokers))
    return engine.hits_view.copy()


def coverage_contribution_order(graph: ASGraph, brokers: list[int]) -> list[int]:
    """Brokers in descending marginal coverage contribution.

    The contribution of broker ``b`` is ``f(B) − f(B \\ {b})`` — the
    number of vertices only ``b`` covers, i.e. vertices of ``N[b]`` with a
    broker hit count of exactly one.  Ties break toward the smaller id so
    the order is deterministic.
    """
    brokers = list(dict.fromkeys(int(b) for b in brokers))
    hits = broker_hit_counts(graph, brokers)
    contribution = {}
    for b in brokers:
        closed = np.append(graph.neighbors(b), b)
        contribution[b] = int(np.count_nonzero(hits[closed] == 1))
    return sorted(brokers, key=lambda b: (-contribution[b], b))


def failure_sweep(
    graph: ASGraph,
    brokers: list[int],
    *,
    strategy: str = "random",
    max_failures: int | None = None,
    step: int = 1,
    seed: SeedLike = 0,
) -> FailureSweepResult:
    """Remove brokers one batch at a time and measure the damage.

    ``strategy="random"`` removes uniformly (expected behaviour under
    independent outages); ``"targeted"`` removes in descending marginal
    coverage contribution (an adversary picking the brokers whose loss
    uncovers the most vertices); ``"degree"`` removes in descending raw
    degree (the crude biggest-members-defect model).

    Removals shrink the dominated graph, which a union-find cannot
    follow — so the sweep is replayed *backwards*: start a
    :class:`~repro.core.engine.DominationEngine` from the survivors at
    the last reported point and add brokers back in reverse removal
    order.  Every reported point is then an O(1) pair-sum query against
    one shared union-find (a single connected-components pass total),
    instead of one full SciPy pass per point.  Values are bit-identical
    to the from-scratch formulation (see
    :func:`failure_sweep_reference`, kept for differential tests and
    the speedup benchmark).
    """
    brokers, order, removed_counts, limit = _sweep_plan(
        graph, brokers, strategy, max_failures, step, seed
    )
    total = len(brokers)
    engine = DominationEngine(graph, order[limit:])
    values_rev = []
    prev = limit
    for k in reversed(removed_counts):
        for b in order[k:prev]:
            engine.add_broker(b)
        prev = k
        values_rev.append(
            engine.saturated_connectivity() if total - k > 0 else 0.0
        )
    return FailureSweepResult(
        removed=np.asarray(removed_counts),
        connectivity=np.asarray(list(reversed(values_rev))),
        strategy=strategy,
    )


def failure_sweep_reference(
    graph: ASGraph,
    brokers: list[int],
    *,
    strategy: str = "random",
    max_failures: int | None = None,
    step: int = 1,
    seed: SeedLike = 0,
) -> FailureSweepResult:
    """From-scratch :func:`failure_sweep`: one full connectivity
    evaluation per reported point.

    Kept as the differential-testing oracle and the baseline the engine
    speedup benchmark measures against.
    """
    brokers, order, removed_counts, _ = _sweep_plan(
        graph, brokers, strategy, max_failures, step, seed
    )
    mask = np.zeros(graph.num_nodes, dtype=bool)
    mask[brokers] = True
    surviving = len(brokers)
    connectivity = []
    removed_so_far = 0
    for k in removed_counts:
        for b in order[removed_so_far:k]:
            mask[b] = False
        surviving -= k - removed_so_far
        removed_so_far = k
        connectivity.append(
            saturated_connectivity(graph, mask) if surviving else 0.0
        )
    return FailureSweepResult(
        removed=np.asarray(removed_counts),
        connectivity=np.asarray(connectivity),
        strategy=strategy,
    )


def _sweep_plan(
    graph: ASGraph,
    brokers: list[int],
    strategy: str,
    max_failures: int | None,
    step: int,
    seed: SeedLike,
) -> tuple[list[int], list[int], list[int], int]:
    """Validate inputs and fix the removal order and reported points."""
    if strategy not in ("random", "targeted", "degree"):
        raise AlgorithmError(f"unknown strategy {strategy!r}")
    brokers = list(dict.fromkeys(int(b) for b in brokers))
    if not brokers:
        raise AlgorithmError("broker set must be non-empty")
    limit = len(brokers) if max_failures is None else min(max_failures, len(brokers))
    if strategy == "random":
        rng = ensure_rng(seed)
        order = [int(b) for b in rng.permutation(brokers)]
    elif strategy == "degree":
        degrees = graph.degrees()
        order = sorted(brokers, key=lambda b: (-int(degrees[b]), b))
    else:
        order = coverage_contribution_order(graph, brokers)
    removed_counts = list(range(0, limit + 1, step))
    if removed_counts[-1] != limit:
        removed_counts.append(limit)
    return brokers, order, removed_counts, limit


def single_failure_impact(graph: ASGraph, brokers: list[int]) -> dict:
    """Worst-case and mean connectivity drop over all single removals.

    Instead of rebuilding the dominated graph from scratch for each of
    the ``|B|`` removals, the per-edge broker-endpoint counts are computed
    once; removing broker ``b`` only deletes the incident edges whose
    *sole* broker endpoint is ``b``, so removals that delete no edge are
    answered without touching the connectivity engine at all.
    """
    brokers = list(dict.fromkeys(int(b) for b in brokers))
    if not brokers:
        raise AlgorithmError("broker set must be non-empty")
    n = graph.num_nodes
    src, dst = graph.edge_src, graph.edge_dst
    mask = np.zeros(n, dtype=bool)
    mask[brokers] = True
    # Edge (u, v) survives B ⊙ A while it retains >= 1 broker endpoint.
    edge_hits = mask[src].astype(np.int8) + mask[dst].astype(np.int8)
    base_keep = edge_hits > 0
    base_matrix = build_csr(n, src[base_keep], dst[base_keep], symmetric=True)
    base = saturated_connectivity(graph, matrix=base_matrix.to_scipy())
    # Incident edge ids per vertex, built once by sorting the doubled
    # endpoint list (O(E log E)), then sliced per broker (O(deg)).
    endpoints = np.concatenate([src, dst])
    edge_ids = np.concatenate([np.arange(len(src)), np.arange(len(src))])
    order = np.argsort(endpoints, kind="stable")
    endpoints, edge_ids = endpoints[order], edge_ids[order]
    drops = []
    worst_broker = brokers[0]
    worst_drop = -1.0
    for b in brokers:
        lo = int(np.searchsorted(endpoints, b, side="left"))
        hi = int(np.searchsorted(endpoints, b, side="right"))
        incident = edge_ids[lo:hi]
        lost = incident[edge_hits[incident] == 1]
        if len(brokers) == 1:
            value = 0.0
        elif lost.size == 0:
            value = base  # b was redundant: the dominated graph is unchanged.
        else:
            keep = base_keep.copy()
            keep[lost] = False
            matrix = build_csr(n, src[keep], dst[keep], symmetric=True)
            value = saturated_connectivity(graph, matrix=matrix.to_scipy())
        drop = base - value
        drops.append(drop)
        if drop > worst_drop:
            worst_drop, worst_broker = drop, b
    return {
        "base": base,
        "worst_drop": worst_drop,
        "worst_broker": worst_broker,
        "mean_drop": float(np.mean(drops)),
    }


def redundant_greedy(graph: ASGraph, budget: int, redundancy: int = 2) -> list[int]:
    """Greedy ``r``-redundant coverage (multi-cover).

    A vertex is *r-covered* when at least ``r`` brokers sit in its closed
    neighbourhood.  The objective ``Σ_v min(hits(v), r)`` is monotone
    submodular, so plain greedy keeps the ``(1 − 1/e)`` guarantee; the
    payoff is that any ``r − 1`` broker failures leave every fully
    covered vertex covered.
    """
    if redundancy < 1:
        raise AlgorithmError(f"redundancy must be >= 1, got {redundancy}")
    if budget < 1 or budget > graph.num_nodes:
        raise AlgorithmError(f"budget {budget} out of range")
    n = graph.num_nodes
    engine = DominationEngine(graph)
    hits = engine.hits_view
    chosen: list[int] = []
    chosen_mask = np.zeros(n, dtype=bool)
    import heapq

    def gain(v: int) -> int:
        neigh = graph.neighbors(v)
        closed_hits = np.concatenate([hits[neigh], hits[v : v + 1]])
        return int(np.count_nonzero(closed_hits < redundancy))

    heap = [(-gain(v), v) for v in range(n)]
    heapq.heapify(heap)
    stale = np.zeros(n, dtype=np.int64)
    round_no = 0
    while heap and len(chosen) < budget:
        neg_g, v = heapq.heappop(heap)
        if chosen_mask[v]:
            continue
        if stale[v] != round_no:
            g = gain(v)
            stale[v] = round_no
            if g > 0:
                heapq.heappush(heap, (-g, v))
            continue
        if -neg_g <= 0:
            break
        engine.add_broker(int(v))
        chosen.append(int(v))
        chosen_mask[v] = True
        round_no += 1
    return chosen


def r_covered_fraction(graph: ASGraph, brokers: list[int], redundancy: int) -> float:
    """Fraction of vertices with >= ``redundancy`` brokers in N[v]."""
    if redundancy < 1:
        raise AlgorithmError("redundancy must be >= 1")
    hits = broker_hit_counts(graph, brokers)
    return float(np.mean(hits >= redundancy))
