"""Traffic-weighted broker selection (an extension the paper motivates).

The paper's objective counts every vertex equally, but its motivation is
traffic: 82 % of 2020 IP traffic is video, concentrated on a minority of
source/destination ASes.  This module generalizes the coverage function
to ``f_w(B) = Σ_{v ∈ B ∪ N(B)} w(v)`` — covering an AS is worth its
traffic share — and re-derives the selection machinery:

* :class:`WeightedCoverageOracle` — incremental weighted-gain queries;
* :func:`weighted_greedy` — Algorithm 1 under ``f_w`` (``f_w`` is still
  monotone submodular, so the ``(1 − 1/e)`` guarantee carries over);
* :func:`weighted_maxsg` — Algorithm 3 under ``f_w`` (connected region
  growth, so the MCBG dominating-path guarantee is preserved);
* :func:`traffic_weights` — a Zipf traffic model over ASes (IXPs carry
  no endpoint traffic of their own).

Weighted saturated connectivity (the fraction of *traffic pairs* served)
is provided for evaluation symmetry.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.core.domination import dominated_adjacency
from repro.core.engine import DominationEngine
from repro.exceptions import AlgorithmError
from repro.graph.asgraph import ASGraph
from repro.graph.csr import connected_components
from repro.utils.rng import SeedLike, ensure_rng


def traffic_weights(
    graph: ASGraph,
    *,
    zipf_exponent: float = 0.9,
    seed: SeedLike = 0,
) -> np.ndarray:
    """Synthetic per-AS traffic shares (sum to 1; IXPs get 0).

    Ranks are assigned by a random permutation biased towards high-degree
    ASes (eyeball/content networks are heavy), then Zipf-distributed.
    """
    if zipf_exponent <= 0:
        raise AlgorithmError("zipf_exponent must be positive")
    rng = ensure_rng(seed)
    n = graph.num_nodes
    weights = np.zeros(n, dtype=np.float64)
    as_ids = graph.as_ids()
    if len(as_ids) == 0:
        return weights
    degree_bias = graph.degrees()[as_ids].astype(np.float64) + 1.0
    noise = rng.gumbel(size=len(as_ids))
    order = as_ids[np.argsort(-(np.log(degree_bias) + noise))]
    shares = 1.0 / np.arange(1, len(order) + 1) ** zipf_exponent
    weights[order] = shares / shares.sum()
    return weights


class WeightedCoverageOracle:
    """Incremental evaluator of ``f_w(B) = Σ_{v ∈ B ∪ N(B)} w(v)``."""

    def __init__(self, graph: ASGraph, weights: np.ndarray) -> None:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (graph.num_nodes,):
            raise AlgorithmError(
                f"weights must have shape ({graph.num_nodes},), got {weights.shape}"
            )
        if (weights < 0).any():
            raise AlgorithmError("weights must be non-negative")
        self._graph = graph
        self._weights = weights
        self._engine = DominationEngine(graph)
        self._brokers: list[int] = []

    @property
    def covered_mask(self) -> np.ndarray:
        return self._engine.covered_view

    @property
    def brokers(self) -> list[int]:
        return list(self._brokers)

    def coverage(self) -> float:
        return float(self._weights[self._engine.covered_view].sum())

    def marginal_gain(self, v: int) -> float:
        covered = self._engine.covered_view
        gain = 0.0 if covered[v] else float(self._weights[v])
        neigh = self._graph.neighbors(v)
        fresh = neigh[~covered[neigh]]
        return gain + float(self._weights[fresh].sum())

    def add(self, v: int) -> float:
        if not 0 <= v < self._graph.num_nodes:
            raise AlgorithmError(f"broker id {v} out of range")
        gain = self.marginal_gain(v)
        self._engine.add_broker(int(v))
        self._brokers.append(int(v))
        return gain

    def add_newly(self, v: int) -> np.ndarray:
        """Add ``v`` and return the newly covered vertex ids."""
        if not 0 <= v < self._graph.num_nodes:
            raise AlgorithmError(f"broker id {v} out of range")
        newly = self._engine.add_broker(int(v))
        self._brokers.append(int(v))
        return newly


def weighted_greedy(
    graph: ASGraph, weights: np.ndarray, budget: int
) -> list[int]:
    """Lazy greedy maximization of ``f_w`` (Algorithm 1, weighted).

    Identical structure to the unweighted CELF loop; cached gains are
    upper bounds by submodularity of ``f_w``.
    """
    _check_budget(graph, budget)
    oracle = WeightedCoverageOracle(graph, weights)
    heap: list[tuple[float, int]] = [
        (-oracle.marginal_gain(v), v) for v in range(graph.num_nodes)
    ]
    heapq.heapify(heap)
    stale = np.zeros(graph.num_nodes, dtype=np.int64)
    round_no = 0
    chosen: list[int] = []
    while heap and len(chosen) < budget:
        neg_gain, v = heapq.heappop(heap)
        if stale[v] != round_no:
            gain = oracle.marginal_gain(v)
            stale[v] = round_no
            if gain > 0:
                heapq.heappush(heap, (-gain, v))
            continue
        if -neg_gain <= 0:
            break
        oracle.add(v)
        chosen.append(v)
        round_no += 1
    return chosen


def weighted_maxsg(
    graph: ASGraph,
    weights: np.ndarray,
    budget: int,
    *,
    seed_vertex: int | None = None,
) -> list[int]:
    """MaxSubGraph-Greedy under traffic weights.

    Keeps the dominated region connected (so the MCBG guarantee holds,
    exactly as for the unweighted variant) while growing weighted
    coverage greedily.  The seed defaults to the heaviest closed
    neighbourhood.
    """
    _check_budget(graph, budget)
    weights = np.asarray(weights, dtype=np.float64)
    oracle = WeightedCoverageOracle(graph, weights)
    n = graph.num_nodes
    if seed_vertex is None:
        best, best_gain = 0, -1.0
        for v in range(n):
            gain = oracle.marginal_gain(v)
            if gain > best_gain:
                best, best_gain = v, gain
        seed_vertex = best
    elif not 0 <= seed_vertex < n:
        raise AlgorithmError(f"seed vertex {seed_vertex} out of range")

    in_set = np.zeros(n, dtype=bool)
    in_heap = np.zeros(n, dtype=bool)
    stale = np.full(n, -1, dtype=np.int64)
    heap: list[tuple[float, int]] = []
    chosen: list[int] = []

    def admit(nodes: np.ndarray, round_no: int) -> None:
        for v in nodes:
            v = int(v)
            if in_heap[v] or in_set[v]:
                continue
            in_heap[v] = True
            gain = oracle.marginal_gain(v)
            if gain > 0:
                stale[v] = round_no
                heapq.heappush(heap, (-gain, v))

    def add(v: int, round_no: int) -> None:
        # The engine reports the newly covered vertices directly.
        fresh = oracle.add_newly(v)
        in_set[v] = True
        chosen.append(v)
        frontier = set(int(x) for x in fresh)
        for u in fresh:
            frontier.update(int(x) for x in graph.neighbors(int(u)))
        admit(np.fromiter(frontier, dtype=np.int64), round_no)

    add(seed_vertex, 0)
    round_no = 1
    while len(chosen) < budget and heap:
        neg_gain, v = heapq.heappop(heap)
        if in_set[v]:
            continue
        if stale[v] != round_no:
            gain = oracle.marginal_gain(v)
            stale[v] = round_no
            if gain > 0:
                heapq.heappush(heap, (-gain, v))
            continue
        if -neg_gain <= 0:
            break
        add(v, round_no)
        round_no += 1
    return chosen


def weighted_saturated_connectivity(
    graph: ASGraph, weights: np.ndarray, brokers: list[int] | None
) -> float:
    """Traffic-pair analogue of saturated connectivity.

    Fraction of weight-products ``w(u)·w(v)`` over ordered distinct pairs
    that are joined by a B-dominated path:
    ``Σ_C (W_C² − Σ_{v∈C} w_v²) / (W² − Σ w_v²)`` over dominated
    components ``C`` with total weight ``W_C``.
    """
    weights = np.asarray(weights, dtype=np.float64)
    total = weights.sum()
    denom = total * total - float((weights**2).sum())
    if denom <= 0:
        return 0.0
    if brokers is None:
        adj = graph.adj
    else:
        adj = dominated_adjacency(graph, brokers)
    _, labels = connected_components(adj.to_scipy())
    num = 0.0
    for comp in np.unique(labels):
        mask = labels == comp
        w_c = float(weights[mask].sum())
        num += w_c * w_c - float((weights[mask] ** 2).sum())
    return num / denom


def _check_budget(graph: ASGraph, budget: int) -> None:
    if budget < 1:
        raise AlgorithmError(f"budget must be >= 1, got {budget}")
    if budget > graph.num_nodes:
        raise AlgorithmError(f"budget {budget} exceeds |V| = {graph.num_nodes}")
