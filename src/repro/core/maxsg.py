"""Algorithm 3 — the MaxSubGraph-Greedy (MaxSG) heuristic.

MaxSG is the paper's practical selection algorithm: ``O(k(|V| + |E|))``
while giving up less than 0.5 % coverage versus the Algorithm-2
approximation.  Each iteration adds the vertex that maximizes the size of
the largest connected subgraph dominated by the broker set — equivalently,
it grows a single connected *dominated region* and greedily maximizes the
region's growth.

Keeping the region connected is not cosmetic: it is exactly what makes the
output a feasible MCBG solution.  Every new broker ``w`` is chosen within
distance two of the current region, so ``w`` reaches an existing broker by
a path of length <= 2 whose interior vertex (if any) is covered — i.e. the
broker set stays connected **inside the dominated graph**, and therefore
every covered pair has a B-dominating path (see
:func:`repro.core.domination.brokers_mutually_connected`).

Implementation notes: candidate vertices live in a lazily re-evaluated
max-heap keyed by marginal coverage gain (submodularity makes cached gains
upper bounds); the candidate pool is widened as the region grows.  The
first broker defaults to the maximum-degree vertex — the paper's step 1
("select a vertex") leaves the seed free, and the ablation benchmark
``benchmarks/test_ablation_maxsg_seed.py`` quantifies the choice.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.core.engine import DominationEngine
from repro.exceptions import AlgorithmError
from repro.graph.asgraph import ASGraph
from repro.obs import add_counter, get_tracer, observe_many, profiled
from repro.utils.rng import SeedLike, ensure_rng


@profiled("kernel.maxsg")
def maxsg(
    graph: ASGraph,
    budget: int,
    *,
    seed_vertex: int | None = None,
    rng_seed: SeedLike = None,
    random_seed_vertex: bool = False,
    backend: str = "python",
) -> list[int]:
    """Run MaxSubGraph-Greedy and return brokers in selection order.

    Parameters
    ----------
    budget:
        Maximum broker-set size ``k``.  The algorithm stops early once the
        dominated region covers every vertex reachable from the seed.
    seed_vertex:
        Explicit first broker.  Defaults to the global maximum-degree
        vertex (ties to the smallest id); ``random_seed_vertex=True``
        samples it uniformly instead (ablation A-seed).
    backend:
        Kernel backend of the backing engine (``"python"`` or
        ``"bitset"``); the selection sequence is bit-identical either
        way — the engine's marginal-gain probe is the only thing that
        changes.
    """
    n = graph.num_nodes
    if budget < 1:
        raise AlgorithmError(f"budget must be >= 1, got {budget}")
    if budget > n:
        raise AlgorithmError(f"budget {budget} exceeds |V| = {n}")

    if seed_vertex is None:
        if random_seed_vertex:
            seed_vertex = int(ensure_rng(rng_seed).integers(n))
        else:
            seed_vertex = int(np.argmax(graph.degrees()))
    elif not 0 <= seed_vertex < n:
        raise AlgorithmError(f"seed vertex {seed_vertex} out of range")

    tracer = get_tracer()
    evaluations = 0
    repops = 0
    engine = DominationEngine(graph, backend=backend)
    in_broker_set = np.zeros(n, dtype=bool)
    in_heap = np.zeros(n, dtype=bool)
    # stale_round[v] = selection round in which v's cached gain was computed.
    stale_round = np.full(n, -1, dtype=np.int64)
    heap: list[tuple[int, int]] = []

    def push_candidates(new_nodes: np.ndarray, round_no: int) -> None:
        """Admit uncovered/covered nodes adjacent to the region as candidates."""
        nonlocal evaluations
        for v in new_nodes:
            v = int(v)
            if in_heap[v] or in_broker_set[v]:
                continue
            evaluations += 1
            gain = engine.marginal_gain(v)
            if gain <= 0:
                # Zero-gain vertices may become useful only if gains grew,
                # which submodularity forbids — drop them permanently.
                in_heap[v] = True
                continue
            in_heap[v] = True
            stale_round[v] = round_no
            heapq.heappush(heap, (-gain, v))

    chosen: list[int] = []
    frontier_sizes: list[int] = []

    def add_broker(v: int, round_no: int) -> None:
        with tracer.span("maxsg.round", round=round_no, vertex=v) as span:
            # The engine reports the newly covered vertices directly —
            # no covered-mask snapshot/diff per round.
            newly_covered = engine.add_broker(v)
            gain = len(newly_covered)
            in_broker_set[v] = True
            chosen.append(v)
            # Candidate pool: the newly covered vertices and their neighbours —
            # everything now within distance two of a broker.
            frontier = set(int(x) for x in newly_covered)
            for u in newly_covered:
                frontier.update(int(x) for x in graph.neighbors(int(u)))
            frontier_sizes.append(len(frontier))
            push_candidates(np.fromiter(frontier, dtype=np.int64), round_no)
            span.set(gain=gain, frontier=len(frontier))

    add_broker(seed_vertex, 0)
    round_no = 1
    while len(chosen) < budget and heap:
        neg_gain, v = heapq.heappop(heap)
        if in_broker_set[v]:
            continue
        if stale_round[v] != round_no:
            evaluations += 1
            gain = engine.marginal_gain(v)
            stale_round[v] = round_no
            if gain > 0:
                repops += 1
                heapq.heappush(heap, (-gain, v))
            continue
        if -neg_gain <= 0:
            break
        add_broker(v, round_no)
        round_no += 1
    add_counter("kernel.maxsg.gain_evaluations", evaluations)
    add_counter("kernel.maxsg.heap_repops", repops)
    add_counter("kernel.maxsg.rounds", len(chosen))
    observe_many("kernel.maxsg.frontier_size", frontier_sizes)
    return chosen


def maxsg_until_dominated(
    graph: ASGraph,
    *,
    seed_vertex: int | None = None,
    max_brokers: int | None = None,
) -> list[int]:
    """Grow MaxSG until the dominated region stops expanding.

    This reproduces the paper's "3,540-alliance": the smallest MaxSG run
    that *totally dominates* the maximum connected subgraph.  Returns the
    broker list; its length is the analogue of 3,540 for the given graph.
    """
    limit = max_brokers if max_brokers is not None else graph.num_nodes
    return maxsg(graph, limit, seed_vertex=seed_vertex)
