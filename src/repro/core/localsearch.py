"""Local-search refinement of broker sets (the "tighter ratios" direction).

The paper's APX-hardness remark leaves "developing approximation
algorithms with tighter ratios" as future work.  A simple, practical step
in that direction is swap-based local search: starting from any feasible
broker set, repeatedly replace one broker with one non-broker whenever
the swap increases coverage while keeping the MCBG dominating-path
guarantee intact.  Local optima of 1-swap search carry their own classic
``1/2``-style guarantees for submodular objectives; in practice a few
swaps polish greedy solutions by a fraction of a percent.

The MCBG constraint is enforced by only admitting swaps that keep the
broker set mutually connected inside the dominated graph (the same
sufficient condition MaxSG maintains by construction).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.coverage import coverage_value
from repro.core.domination import brokers_mutually_connected
from repro.core.engine import DominationEngine
from repro.exceptions import AlgorithmError
from repro.graph.asgraph import ASGraph


@dataclass(frozen=True)
class LocalSearchResult:
    """Refined broker set with swap statistics."""

    brokers: list[int]
    initial_coverage: int
    final_coverage: int
    swaps: int
    iterations: int

    @property
    def improvement(self) -> int:
        return self.final_coverage - self.initial_coverage


def swap_local_search(
    graph: ASGraph,
    brokers: list[int],
    *,
    max_iterations: int = 50,
    candidate_pool: int = 200,
    enforce_mcbg: bool = True,
    seed: int = 0,
) -> LocalSearchResult:
    """1-swap hill climbing on ``f(B)`` with optional MCBG preservation.

    Each iteration scans (broker, candidate) pairs — candidates are the
    highest-degree non-brokers plus a random sample, bounded by
    ``candidate_pool`` — and applies the best improving swap.  Stops at a
    local optimum or after ``max_iterations`` swaps.
    """
    if max_iterations < 0:
        raise AlgorithmError("max_iterations must be >= 0")
    brokers = list(dict.fromkeys(int(b) for b in brokers))
    if not brokers:
        raise AlgorithmError("broker set must be non-empty")
    rng = np.random.default_rng(seed)
    n = graph.num_nodes
    degrees = graph.degrees()

    current = list(brokers)
    initial = coverage_value(graph, current)
    best_value = initial
    swaps = 0
    iterations = 0
    for _ in range(max_iterations):
        iterations += 1
        broker_set = set(current)
        outside = np.array([v for v in range(n) if v not in broker_set])
        if len(outside) == 0:
            break
        by_degree = outside[np.argsort(-degrees[outside])][: candidate_pool // 2]
        sampled = rng.choice(
            outside, size=min(candidate_pool // 2, len(outside)), replace=False
        )
        candidates = np.unique(np.concatenate([by_degree, sampled]))

        best_swap: tuple[int, int] | None = None
        best_swap_value = best_value
        engine = DominationEngine(graph, current)
        for b in current:
            without = [x for x in current if x != b]
            # Evaluate all candidates against the fixed "B minus b" state:
            # f(without + {c}) = f(without) + marginal gain of c.  The
            # engine's checkpoint/rollback makes each "minus b" probe an
            # O(deg(b)) delta instead of a from-scratch mask rebuild.
            token = engine.checkpoint()
            engine.remove_broker(b)
            base = engine.coverage()
            for c in candidates:
                c = int(c)
                value = base + engine.marginal_gain(c)
                if value > best_swap_value:
                    if enforce_mcbg and not brokers_mutually_connected(
                        graph, without + [c]
                    ):
                        continue
                    best_swap_value = value
                    best_swap = (b, c)
            engine.rollback(token)
        if best_swap is None:
            break
        out_b, in_c = best_swap
        current = [x for x in current if x != out_b] + [in_c]
        best_value = best_swap_value
        swaps += 1
    return LocalSearchResult(
        brokers=current,
        initial_coverage=initial,
        final_coverage=best_value,
        swaps=swaps,
        iterations=iterations,
    )
