"""Path-length constraints and their stochastic evaluation (Section 5.2).

Problem 4 adds per-pair path-length requirements to MCBG.  The paper
evaluates a candidate broker set ``B`` *stochastically*: treat the choice
of a source/destination pair as a random event, let ``F(l)`` be the
cumulative path-length distribution of the free topology and ``F_B(l)``
the distribution under B-dominated routing, and call a selection strategy
*feasible* when ``|F_B(l) − F(l)| <= ε`` for all ``l`` (Eq. 4).

Both distributions are l-hop connectivity curves, so this module is a thin
veneer over :mod:`repro.core.connectivity` that packages the deviation
statistics (the sup-norm is a Kolmogorov-Smirnov-style distance between
the two connectivity curves).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.connectivity import ConnectivityCurve, connectivity_curve
from repro.exceptions import AlgorithmError
from repro.graph.asgraph import ASGraph
from repro.utils.rng import SeedLike


@dataclass(frozen=True)
class FeasibilityReport:
    """Outcome of the Eq. (4) check for one broker set."""

    epsilon: float
    max_deviation: float
    deviation_per_hop: np.ndarray
    feasible: bool
    free_curve: ConnectivityCurve
    broker_curve: ConnectivityCurve

    @property
    def worst_hop(self) -> int:
        """Hop bound where the deviation peaks (1-indexed)."""
        return int(np.argmax(self.deviation_per_hop)) + 1


def path_length_distribution(
    graph: ASGraph,
    brokers: list[int] | None = None,
    *,
    max_hops: int = 8,
    num_sources: int | None = None,
    seed: SeedLike = 0,
) -> ConnectivityCurve:
    """``F(l)`` (``brokers=None``) or ``F_B(l)`` as a cumulative curve.

    The curve's ``fractions[l-1]`` equals the probability that a random
    distinct ordered pair has an (optionally B-dominated) path of at most
    ``l`` hops, which is exactly the cumulative histogram the paper's
    ``B ⊙ A`` operator computes.
    """
    return connectivity_curve(
        graph, brokers, max_hops=max_hops, num_sources=num_sources, seed=seed
    )


def evaluate_feasibility(
    graph: ASGraph,
    brokers: list[int],
    *,
    epsilon: float = 0.05,
    max_hops: int = 8,
    num_sources: int | None = None,
    seed: SeedLike = 0,
    free_curve: ConnectivityCurve | None = None,
) -> FeasibilityReport:
    """Check Eq. (4): is ``B`` a feasible strategy at tolerance ``ε``?

    ``free_curve`` can be precomputed once per topology and shared across
    many candidate broker sets (the experiment sweeps do this).
    """
    if not 0.0 <= epsilon <= 1.0:
        raise AlgorithmError(f"epsilon must be in [0, 1], got {epsilon}")
    if free_curve is None:
        free_curve = path_length_distribution(
            graph, None, max_hops=max_hops, num_sources=num_sources, seed=seed
        )
    broker_curve = path_length_distribution(
        graph, brokers, max_hops=max_hops, num_sources=num_sources, seed=seed
    )
    hops = min(free_curve.max_hops, broker_curve.max_hops)
    deviation = np.abs(
        free_curve.fractions[:hops] - broker_curve.fractions[:hops]
    )
    max_dev = float(deviation.max(initial=0.0))
    return FeasibilityReport(
        epsilon=epsilon,
        max_deviation=max_dev,
        deviation_per_hop=deviation,
        feasible=max_dev <= epsilon,
        free_curve=free_curve,
        broker_curve=broker_curve,
    )


def minimum_feasible_epsilon(report: FeasibilityReport) -> float:
    """Smallest tolerance under which the checked broker set is feasible."""
    return report.max_deviation
