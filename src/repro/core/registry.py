"""Central algorithm registry.

Every selection algorithm registers here exactly once with its name,
capability tags, and declared parameter schema.  Downstream consumers —
:class:`repro.core.selector.BrokerSelector`, the ``repro`` CLI, the
experiment sweeps, the result-cache keys and the ledger records — all
resolve algorithms through this table instead of keeping their own
``if algo == ...`` ladders, so adding an algorithm is a single
registration and every layer picks it up.

A runner has the uniform signature ``run(graph, budget, **params)`` and
returns ``(brokers, extra_params)`` where ``extra_params`` are
result-derived values (e.g. the MCBG approximation's ``x_star`` and
chosen root) that belong in :class:`SelectionResult.parameters`
alongside the declared knobs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core import baselines
from repro.core.approx_mcbg import approx_mcbg
from repro.core.greedy import lazy_greedy_max_coverage
from repro.core.maxsg import maxsg
from repro.exceptions import AlgorithmError
from repro.graph.asgraph import ASGraph

__all__ = [
    "AlgorithmSpec",
    "ParamSpec",
    "algorithm_names",
    "all_specs",
    "canonical_params",
    "get_algorithm",
    "register_algorithm",
    "registry_fingerprint",
    "run_algorithm",
]


@dataclass(frozen=True)
class ParamSpec:
    """One declared algorithm knob."""

    name: str
    kind: str
    default: object = None
    summary: str = ""


@dataclass(frozen=True)
class AlgorithmSpec:
    """A registered selection algorithm."""

    name: str
    summary: str
    budgeted: bool
    capabilities: tuple[str, ...]
    params: tuple[ParamSpec, ...] = ()
    runner: Callable | None = field(default=None, repr=False)

    def describe(self) -> dict:
        """JSON-safe description (what ``repro algorithms --json`` emits)."""
        return {
            "name": self.name,
            "summary": self.summary,
            "budgeted": self.budgeted,
            "capabilities": list(self.capabilities),
            "params": [
                {
                    "name": p.name,
                    "kind": p.kind,
                    "default": p.default,
                    "summary": p.summary,
                }
                for p in self.params
            ],
        }


_REGISTRY: dict[str, AlgorithmSpec] = {}


def register_algorithm(spec: AlgorithmSpec) -> AlgorithmSpec:
    """Register ``spec``; duplicate names are an error."""
    if spec.name in _REGISTRY:
        raise AlgorithmError(f"algorithm {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def get_algorithm(name: str) -> AlgorithmSpec:
    """Look up a registered algorithm by name."""
    spec = _REGISTRY.get(name)
    if spec is None:
        raise AlgorithmError(
            f"unknown algorithm {name!r}; choose from {algorithm_names()}"
        )
    return spec


def all_specs() -> tuple[AlgorithmSpec, ...]:
    """All registered algorithms in registration order."""
    return tuple(_REGISTRY.values())


def algorithm_names(*, budgeted: bool | None = None) -> tuple[str, ...]:
    """Registered names, optionally filtered by budgetedness."""
    return tuple(
        spec.name
        for spec in _REGISTRY.values()
        if budgeted is None or spec.budgeted == budgeted
    )


def canonical_params(name: str, params: dict | None = None) -> dict:
    """Fill declared defaults and reject undeclared knobs.

    The canonical dict is what cache keys and ledger records embed, so
    two invocations that differ only in *spelling* (defaults omitted vs
    spelled out) share one cache entry.
    """
    spec = get_algorithm(name)
    given = dict(params or {})
    out = {}
    for p in spec.params:
        out[p.name] = given.pop(p.name, p.default)
    if given:
        unknown = ", ".join(sorted(given))
        raise AlgorithmError(
            f"algorithm {name!r} does not accept parameter(s): {unknown}"
        )
    return out


def registry_fingerprint() -> str:
    """Stable digest of the roster: names, budgetedness, default knobs.

    Experiment cache keys embed this, so cached results invalidate when
    an algorithm is added, removed, or changes its declared defaults —
    without each call site enumerating the roster itself.
    """
    import hashlib
    import json

    payload = json.dumps(
        [
            [spec.name, spec.budgeted, canonical_params(spec.name)]
            for spec in all_specs()
        ],
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def run_algorithm(
    name: str, graph: ASGraph, budget: int | None = None, **params
) -> tuple[list[int], dict]:
    """Resolve ``name`` and run it; returns ``(brokers, extra_params)``.

    ``budget`` is mandatory for budgeted algorithms and ignored by the
    rest.  ``params`` must be declared in the algorithm's schema;
    omitted knobs take their declared defaults.
    """
    spec = get_algorithm(name)
    if spec.budgeted and budget is None:
        raise AlgorithmError(f"algorithm {name!r} requires a budget")
    filled = canonical_params(name, params)
    return spec.runner(graph, budget, **filled)


# ----------------------------------------------------------------------
# Built-in registrations (registration order defines the canonical
# ordering that BUDGETED_ALGORITHMS / UNBUDGETED_ALGORITHMS expose).
# ----------------------------------------------------------------------


def _run_greedy(graph, budget):
    return lazy_greedy_max_coverage(graph, budget), {}


def _run_approx(graph, budget, beta=4):
    result = approx_mcbg(graph, budget, beta=beta)
    return result.brokers, {"beta": beta, "x_star": result.x_star, "root": result.root}


def _run_maxsg(graph, budget):
    return maxsg(graph, budget), {}


def _run_degree(graph, budget):
    return baselines.degree_based(graph, budget), {}


def _run_pagerank(graph, budget):
    return baselines.pagerank_based(graph, budget), {}


def _run_random(graph, budget, seed=0):
    return baselines.random_brokers(graph, budget, seed=seed), {}


def _run_sc(graph, budget, seed=0):
    return baselines.set_cover_dominating(graph, seed=seed), {}


def _run_ixp(graph, budget, degree_threshold=0):
    brokers = baselines.ixp_based(graph, degree_threshold=degree_threshold)
    return brokers, {"degree_threshold": degree_threshold}


def _run_tier1(graph, budget):
    return baselines.tier1_only(graph), {}


register_algorithm(AlgorithmSpec(
    name="greedy",
    summary="Algorithm 1: lazy greedy max-coverage (CELF)",
    budgeted=True,
    capabilities=("coverage", "submodular", "lazy-eval"),
    runner=_run_greedy,
))
register_algorithm(AlgorithmSpec(
    name="approx",
    summary="Algorithm 2: MCBG approximation on an (alpha, beta)-graph",
    budgeted=True,
    capabilities=("coverage", "mcbg", "approximation"),
    params=(
        ParamSpec("beta", "int", 4, "diameter bound of the (alpha, beta)-graph"),
    ),
    runner=_run_approx,
))
register_algorithm(AlgorithmSpec(
    name="maxsg",
    summary="Algorithm 3: MaxSubGraph-Greedy (connected broker set)",
    budgeted=True,
    capabilities=("coverage", "mcbg", "incremental"),
    runner=_run_maxsg,
))
register_algorithm(AlgorithmSpec(
    name="degree",
    summary="baseline: top-k vertices by degree",
    budgeted=True,
    capabilities=("baseline",),
    runner=_run_degree,
))
register_algorithm(AlgorithmSpec(
    name="pagerank",
    summary="baseline: top-k vertices by PageRank",
    budgeted=True,
    capabilities=("baseline",),
    runner=_run_pagerank,
))
register_algorithm(AlgorithmSpec(
    name="random",
    summary="baseline: uniform random sample",
    budgeted=True,
    capabilities=("baseline", "randomized"),
    params=(ParamSpec("seed", "int", 0, "RNG seed for the sample"),),
    runner=_run_random,
))
register_algorithm(AlgorithmSpec(
    name="sc",
    summary="randomized Set-Cover dominating set",
    budgeted=False,
    capabilities=("baseline", "dominating-set", "randomized"),
    params=(ParamSpec("seed", "int", 0, "RNG seed for the scan order"),),
    runner=_run_sc,
))
register_algorithm(AlgorithmSpec(
    name="ixp",
    summary="baseline: IXPs above a degree threshold",
    budgeted=False,
    capabilities=("baseline", "metadata"),
    params=(
        ParamSpec("degree_threshold", "int", 0, "minimum IXP degree to qualify"),
    ),
    runner=_run_ixp,
))
register_algorithm(AlgorithmSpec(
    name="tier1",
    summary="baseline: tier-1 ISPs only",
    budgeted=False,
    capabilities=("baseline", "metadata"),
    runner=_run_tier1,
))
