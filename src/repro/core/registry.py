"""Central algorithm registry.

Every selection algorithm registers here exactly once with its name,
capability tags, and declared parameter schema.  Downstream consumers —
:class:`repro.core.selector.BrokerSelector`, the ``repro`` CLI, the
experiment sweeps, the result-cache keys and the ledger records — all
resolve algorithms through this table instead of keeping their own
``if algo == ...`` ladders, so adding an algorithm is a single
registration and every layer picks it up.

A runner has the uniform signature ``run(graph, budget, **params)`` and
returns ``(brokers, extra_params)`` where ``extra_params`` are
result-derived values (e.g. the MCBG approximation's ``x_star`` and
chosen root) that belong in :class:`SelectionResult.parameters`
alongside the declared knobs.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable

from repro.core import baselines
from repro.core.approx_mcbg import approx_mcbg
from repro.core.bitset import bitset_lazy_greedy_max_coverage
from repro.core.greedy import lazy_greedy_max_coverage
from repro.core.maxsg import maxsg
from repro.exceptions import AlgorithmError
from repro.graph.asgraph import ASGraph

__all__ = [
    "AlgorithmSpec",
    "BackendSpec",
    "DEFAULT_BACKEND",
    "IndexSpec",
    "KERNEL_BACKEND_ENV",
    "ParamSpec",
    "algorithm_names",
    "all_backend_specs",
    "all_index_specs",
    "all_specs",
    "backend_names",
    "canonical_params",
    "get_algorithm",
    "get_backend",
    "get_index",
    "index_names",
    "register_algorithm",
    "register_backend",
    "register_backend_runner",
    "register_index",
    "registry_fingerprint",
    "resolve_backend",
    "run_algorithm",
]

#: Environment variable that picks the kernel backend when a call site
#: leaves it unspecified (how CI flips the whole suite per matrix axis).
KERNEL_BACKEND_ENV = "REPRO_KERNEL_BACKEND"

#: The reference implementation every other backend is pinned against.
DEFAULT_BACKEND = "python"


@dataclass(frozen=True)
class ParamSpec:
    """One declared algorithm knob."""

    name: str
    kind: str
    default: object = None
    summary: str = ""


@dataclass(frozen=True)
class AlgorithmSpec:
    """A registered selection algorithm."""

    name: str
    summary: str
    budgeted: bool
    capabilities: tuple[str, ...]
    params: tuple[ParamSpec, ...] = ()
    runner: Callable | None = field(default=None, repr=False)

    def describe(self) -> dict:
        """JSON-safe description (what ``repro algorithms --json`` emits)."""
        return {
            "name": self.name,
            "summary": self.summary,
            "budgeted": self.budgeted,
            "capabilities": list(self.capabilities),
            "params": [
                {
                    "name": p.name,
                    "kind": p.kind,
                    "default": p.default,
                    "summary": p.summary,
                }
                for p in self.params
            ],
        }


@dataclass(frozen=True)
class BackendSpec:
    """A registered kernel backend.

    ``capabilities`` are the kernel families the backend accelerates
    (e.g. ``"greedy"``, ``"connectivity"``, ``"engine"``); an algorithm
    with no backend-specific runner silently falls back to the default
    python implementation, so every backend supports every algorithm —
    the flags only describe where it actually differs.
    """

    name: str
    summary: str
    capabilities: tuple[str, ...] = ()

    def describe(self) -> dict:
        """JSON-safe description (``repro algorithms --json`` emits it)."""
        return {
            "name": self.name,
            "summary": self.summary,
            "capabilities": list(self.capabilities),
        }


@dataclass(frozen=True)
class IndexSpec:
    """A registered serving index family.

    ``builder`` has the signature ``build(engine) -> index`` where the
    returned index offers ``to_payload()`` / ``from_payload()`` for
    result-cache round-trips.  ``params`` document the (fixed) build
    policy — they ride into cache keys through
    :func:`registry_fingerprint`, so changing a family's policy
    invalidates its cached payloads like any roster change.
    """

    name: str
    summary: str
    capabilities: tuple[str, ...] = ()
    params: tuple[ParamSpec, ...] = ()
    builder: Callable | None = field(default=None, repr=False)

    def describe(self) -> dict:
        """JSON-safe description (``repro algorithms --json`` emits it)."""
        return {
            "name": self.name,
            "summary": self.summary,
            "capabilities": list(self.capabilities),
            "params": [
                {
                    "name": p.name,
                    "kind": p.kind,
                    "default": p.default,
                    "summary": p.summary,
                }
                for p in self.params
            ],
        }


_REGISTRY: dict[str, AlgorithmSpec] = {}
_BACKENDS: dict[str, BackendSpec] = {}
_INDEXES: dict[str, IndexSpec] = {}
#: ``(algorithm, backend) -> runner`` overrides; absence means fallback
#: to the algorithm's default (python) runner.
_BACKEND_RUNNERS: dict[tuple[str, str], Callable] = {}


def register_backend(spec: BackendSpec) -> BackendSpec:
    """Register a kernel backend; duplicate names are an error."""
    if spec.name in _BACKENDS:
        raise AlgorithmError(f"backend {spec.name!r} is already registered")
    _BACKENDS[spec.name] = spec
    return spec


def get_backend(name: str) -> BackendSpec:
    """Look up a registered backend by name."""
    spec = _BACKENDS.get(name)
    if spec is None:
        raise AlgorithmError(
            f"unknown kernel backend {name!r}; choose from {backend_names()}"
        )
    return spec


def backend_names() -> tuple[str, ...]:
    """Registered backend names in registration order."""
    return tuple(_BACKENDS)


def all_backend_specs() -> tuple[BackendSpec, ...]:
    """All registered backends in registration order."""
    return tuple(_BACKENDS.values())


def resolve_backend(backend: str | None = None) -> str:
    """Normalize a backend request to a registered name.

    ``None`` defers to ``$REPRO_KERNEL_BACKEND``, then to
    :data:`DEFAULT_BACKEND`; unknown names raise.  Call sites store the
    *resolved* name in cache keys and ledger records so a run's backend
    is always explicit after the fact.
    """
    name = backend or os.environ.get(KERNEL_BACKEND_ENV) or DEFAULT_BACKEND
    get_backend(name)
    return name


def register_backend_runner(
    algorithm: str, backend: str, runner: Callable
) -> None:
    """Override ``algorithm``'s runner under ``backend``."""
    get_algorithm(algorithm)
    get_backend(backend)
    key = (algorithm, backend)
    if key in _BACKEND_RUNNERS:
        raise AlgorithmError(
            f"algorithm {algorithm!r} already has a {backend!r} runner"
        )
    _BACKEND_RUNNERS[key] = runner


def backend_runner(algorithm: str, backend: str) -> Callable:
    """The runner for ``(algorithm, backend)``, falling back to python."""
    spec = get_algorithm(algorithm)
    return _BACKEND_RUNNERS.get((algorithm, backend), spec.runner)


def register_index(spec: IndexSpec) -> IndexSpec:
    """Register a serving index family; duplicate names are an error."""
    if spec.name in _INDEXES:
        raise AlgorithmError(f"index {spec.name!r} is already registered")
    _INDEXES[spec.name] = spec
    return spec


def get_index(name: str) -> IndexSpec:
    """Look up a registered index family by name."""
    spec = _INDEXES.get(name)
    if spec is None:
        raise AlgorithmError(
            f"unknown serving index {name!r}; choose from {index_names()}"
        )
    return spec


def index_names() -> tuple[str, ...]:
    """Registered index family names in registration order."""
    return tuple(_INDEXES)


def all_index_specs() -> tuple[IndexSpec, ...]:
    """All registered index families in registration order."""
    return tuple(_INDEXES.values())


def register_algorithm(spec: AlgorithmSpec) -> AlgorithmSpec:
    """Register ``spec``; duplicate names are an error."""
    if spec.name in _REGISTRY:
        raise AlgorithmError(f"algorithm {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def get_algorithm(name: str) -> AlgorithmSpec:
    """Look up a registered algorithm by name."""
    spec = _REGISTRY.get(name)
    if spec is None:
        raise AlgorithmError(
            f"unknown algorithm {name!r}; choose from {algorithm_names()}"
        )
    return spec


def all_specs() -> tuple[AlgorithmSpec, ...]:
    """All registered algorithms in registration order."""
    return tuple(_REGISTRY.values())


def algorithm_names(*, budgeted: bool | None = None) -> tuple[str, ...]:
    """Registered names, optionally filtered by budgetedness."""
    return tuple(
        spec.name
        for spec in _REGISTRY.values()
        if budgeted is None or spec.budgeted == budgeted
    )


def canonical_params(name: str, params: dict | None = None) -> dict:
    """Fill declared defaults and reject undeclared knobs.

    The canonical dict is what cache keys and ledger records embed, so
    two invocations that differ only in *spelling* (defaults omitted vs
    spelled out) share one cache entry.
    """
    spec = get_algorithm(name)
    given = dict(params or {})
    out = {}
    for p in spec.params:
        out[p.name] = given.pop(p.name, p.default)
    if given:
        unknown = ", ".join(sorted(given))
        raise AlgorithmError(
            f"algorithm {name!r} does not accept parameter(s): {unknown}"
        )
    return out


def registry_fingerprint() -> str:
    """Stable digest of the roster: names, budgetedness, default knobs.

    Experiment cache keys embed this, so cached results invalidate when
    an algorithm is added, removed, or changes its declared defaults —
    without each call site enumerating the roster itself.  The backend
    roster (and which algorithms carry backend-specific runners) rides
    along for the same reason.
    """
    import hashlib
    import json

    payload = json.dumps(
        [
            [
                [spec.name, spec.budgeted, canonical_params(spec.name)]
                for spec in all_specs()
            ],
            [list(backend_names()), sorted(map(list, _BACKEND_RUNNERS))],
            [
                [spec.name, {p.name: p.default for p in spec.params}]
                for spec in all_index_specs()
            ],
        ],
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def run_algorithm(
    name: str,
    graph: ASGraph,
    budget: int | None = None,
    *,
    backend: str | None = None,
    **params,
) -> tuple[list[int], dict]:
    """Resolve ``name`` and run it; returns ``(brokers, extra_params)``.

    ``budget`` is mandatory for budgeted algorithms and ignored by the
    rest.  ``params`` must be declared in the algorithm's schema;
    omitted knobs take their declared defaults.  ``backend`` picks the
    kernel implementation (:func:`resolve_backend` semantics); every
    backend returns bit-identical brokers, so this is purely a speed
    knob and deliberately not part of the declared parameter schema.
    """
    spec = get_algorithm(name)
    if spec.budgeted and budget is None:
        raise AlgorithmError(f"algorithm {name!r} requires a budget")
    filled = canonical_params(name, params)
    runner = backend_runner(name, resolve_backend(backend))
    return runner(graph, budget, **filled)


# ----------------------------------------------------------------------
# Built-in registrations (registration order defines the canonical
# ordering that BUDGETED_ALGORITHMS / UNBUDGETED_ALGORITHMS expose).
# ----------------------------------------------------------------------


def _run_greedy(graph, budget):
    return lazy_greedy_max_coverage(graph, budget), {}


def _run_approx(graph, budget, beta=4):
    result = approx_mcbg(graph, budget, beta=beta)
    return result.brokers, {"beta": beta, "x_star": result.x_star, "root": result.root}


def _run_maxsg(graph, budget):
    return maxsg(graph, budget), {}


def _run_degree(graph, budget):
    return baselines.degree_based(graph, budget), {}


def _run_pagerank(graph, budget):
    return baselines.pagerank_based(graph, budget), {}


def _run_random(graph, budget, seed=0):
    return baselines.random_brokers(graph, budget, seed=seed), {}


def _run_sc(graph, budget, seed=0):
    return baselines.set_cover_dominating(graph, seed=seed), {}


def _run_ixp(graph, budget, degree_threshold=0):
    brokers = baselines.ixp_based(graph, degree_threshold=degree_threshold)
    return brokers, {"degree_threshold": degree_threshold}


def _run_tier1(graph, budget):
    return baselines.tier1_only(graph), {}


register_algorithm(AlgorithmSpec(
    name="greedy",
    summary="Algorithm 1: lazy greedy max-coverage (CELF)",
    budgeted=True,
    capabilities=("coverage", "submodular", "lazy-eval"),
    runner=_run_greedy,
))
register_algorithm(AlgorithmSpec(
    name="approx",
    summary="Algorithm 2: MCBG approximation on an (alpha, beta)-graph",
    budgeted=True,
    capabilities=("coverage", "mcbg", "approximation"),
    params=(
        ParamSpec("beta", "int", 4, "diameter bound of the (alpha, beta)-graph"),
    ),
    runner=_run_approx,
))
register_algorithm(AlgorithmSpec(
    name="maxsg",
    summary="Algorithm 3: MaxSubGraph-Greedy (connected broker set)",
    budgeted=True,
    capabilities=("coverage", "mcbg", "incremental"),
    runner=_run_maxsg,
))
register_algorithm(AlgorithmSpec(
    name="degree",
    summary="baseline: top-k vertices by degree",
    budgeted=True,
    capabilities=("baseline",),
    runner=_run_degree,
))
register_algorithm(AlgorithmSpec(
    name="pagerank",
    summary="baseline: top-k vertices by PageRank",
    budgeted=True,
    capabilities=("baseline",),
    runner=_run_pagerank,
))
register_algorithm(AlgorithmSpec(
    name="random",
    summary="baseline: uniform random sample",
    budgeted=True,
    capabilities=("baseline", "randomized"),
    params=(ParamSpec("seed", "int", 0, "RNG seed for the sample"),),
    runner=_run_random,
))
register_algorithm(AlgorithmSpec(
    name="sc",
    summary="randomized Set-Cover dominating set",
    budgeted=False,
    capabilities=("baseline", "dominating-set", "randomized"),
    params=(ParamSpec("seed", "int", 0, "RNG seed for the scan order"),),
    runner=_run_sc,
))
register_algorithm(AlgorithmSpec(
    name="ixp",
    summary="baseline: IXPs above a degree threshold",
    budgeted=False,
    capabilities=("baseline", "metadata"),
    params=(
        ParamSpec("degree_threshold", "int", 0, "minimum IXP degree to qualify"),
    ),
    runner=_run_ixp,
))
register_algorithm(AlgorithmSpec(
    name="tier1",
    summary="baseline: tier-1 ISPs only",
    budgeted=False,
    capabilities=("baseline", "metadata"),
    runner=_run_tier1,
))


# ----------------------------------------------------------------------
# Kernel backends.  ``python`` is the reference; ``bitset`` overrides
# the kernels where packed 64-bit masks beat per-vertex numpy loops and
# falls back to python everywhere else (the differential suite pins the
# overridden kernels bit-identical).
# ----------------------------------------------------------------------


def _run_greedy_bitset(graph, budget):
    return bitset_lazy_greedy_max_coverage(graph, budget), {}


def _run_maxsg_bitset(graph, budget):
    return maxsg(graph, budget, backend="bitset"), {}


register_backend(BackendSpec(
    name="python",
    summary="reference kernels: per-vertex numpy/CSR loops",
    capabilities=("reference",),
))
register_backend(BackendSpec(
    name="bitset",
    summary="packed 64-bit masks: batched gains + bit-parallel BFS",
    capabilities=("greedy", "maxsg", "connectivity", "engine"),
))
register_backend_runner("greedy", "bitset", _run_greedy_bitset)
register_backend_runner("maxsg", "bitset", _run_maxsg_bitset)


# ----------------------------------------------------------------------
# Serving index families.  Builders import lazily: the serving package
# resolves this registry at import time, so a top-level import here
# would be circular.
# ----------------------------------------------------------------------


def _build_hub2(engine):
    from repro.serving.labels import HubLabelIndex

    return HubLabelIndex.build(engine)


register_index(IndexSpec(
    name="hub2",
    summary="2-hop hub labels (pruned landmark labeling) over the "
            "broker-dominated subgraph",
    capabilities=("serving", "distance", "path", "incremental-repair"),
    params=(
        ParamSpec("order", "str", "degree",
                  "root processing order (degree desc, id asc)"),
    ),
    builder=_build_hub2,
))
