"""Incremental domination/coverage engine.

Every consumer of broker-set state used to rebuild it its own way: the
selection kernels kept grow-only covered masks, ``robustness.py``
recomputed dominated matrices per failure point, and the healing /
churn layers rebuilt adjacency sets after every event.  The
:class:`DominationEngine` consolidates all of that into one mutable,
CSR-backed state that supports the paper's dynamic experiments at the
cost of the *affected neighborhood* per event instead of the whole
graph:

* **broker roster** — which vertices are currently selected;
* **hit counts** — ``hits[v]`` = number of *effective* brokers (broker
  AND alive) in the closed alive-neighborhood of ``v``, matching
  :func:`repro.core.robustness.broker_hit_counts` exactly;
* **covered mask** — ``covered[v] = alive[v] and hits[v] > 0``, i.e.
  the paper's coverage ``f(B) = |B ∪ N(B)|`` generalized to a mutable
  topology;
* **dominated-subgraph connectivity** — saturated connectivity of
  ``B ⊙ A`` maintained by a lazy union-find over dominated alive
  edges with an exact integer pair-sum.

Mutations (``add_broker`` / ``remove_broker`` / ``fail_node`` /
``restore_node`` / ``cut_link`` / ``restore_link`` / ``add_link`` /
``add_node``) update hit counts by walking only the incident edges.
Monotone-growth mutations also patch the union-find incrementally;
shrinking mutations mark it dirty and the next connectivity query
rebuilds it from the current dominated edge set (one SciPy
connected-components pass), after which O(1) queries resume.

Undo is a delta log: :meth:`checkpoint` returns a token and
:meth:`rollback` replays inverse operations in reverse order.  The log
only records between ``checkpoint()`` and ``rollback()`` so unbounded
event streams (churn) pay nothing for it.

:meth:`verify` recomputes the full state from scratch and raises if
any maintained quantity diverges — the property suite drives random
operation interleavings against it.

Numerical contract: connectivity is computed as ``pair_sum / (n*(n-1))``
where ``pair_sum = Σ_C |C|(|C|-1)`` is maintained as an exact Python/
NumPy integer.  Component sizes are bounded by ``n < 2**26`` here, so
every product is exactly representable in float64 and the division is
bit-identical to the historical
:func:`repro.core.connectivity.saturated_connectivity` path.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.exceptions import AlgorithmError
from repro.graph.asgraph import ASGraph
from repro.graph.csr import connected_components

__all__ = ["DominationEngine"]


_EMPTY = np.empty(0, dtype=np.int64)


class DominationEngine:
    """Mutable broker/coverage/connectivity state over one topology.

    Parameters
    ----------
    graph:
        The base topology.  Node ids ``0..graph.num_nodes-1`` are the
        initial universe; :meth:`add_node` can extend it (churn
        arrivals).
    brokers:
        Optional initial broker set (duplicates are ignored).
    """

    def __init__(
        self, graph: ASGraph, brokers=(), *, backend: str = "python"
    ) -> None:
        if backend not in ("python", "bitset"):
            raise AlgorithmError(
                f"unknown engine backend {backend!r}; "
                "choose 'python' or 'bitset'"
            )
        self._graph = graph
        self._backend = backend
        # Bitset mirror of the uncovered set (python-int mask); ``None``
        # means dirty — rebuilt from ``_covered`` on the next probe.
        # Only maintained while the topology is pristine (``_simple``).
        self._uncovered_bits: int | None = None
        self._nbhd_masks: list[int] | None = None
        n = graph.num_nodes
        self._n_base = n
        self._num_nodes = n
        self._num_alive = n
        self._covered_alive = 0

        self._indptr = graph.adj.indptr
        self._indices = graph.adj.indices
        self._base_src = graph.edge_src
        self._base_dst = graph.edge_dst
        self._edge_alive = np.ones(len(self._base_src), dtype=bool)

        # Residual-capacity accounting over base edges — enabled when the
        # graph carries edge attributes (a simplified multigraph or an
        # annotated ASGraph).  ``reserve``/``release`` mutate ``_reserved``
        # and participate in the same checkpoint/rollback log as topology
        # mutations.
        if graph.edge_attrs is not None:
            self._capacity: np.ndarray | None = (
                graph.edge_attrs.capacity_gbps.copy()
            )
            self._reserved: np.ndarray | None = np.zeros(
                len(self._base_src), dtype=np.float64
            )
        else:
            self._capacity = None
            self._reserved = None

        cap = max(n, 1)
        self._broker = np.zeros(cap, dtype=bool)
        self._alive = np.ones(cap, dtype=bool)
        self._hits = np.zeros(cap, dtype=np.int64)
        self._covered = np.zeros(cap, dtype=bool)

        # Extension edges (churn LINK_UP between pairs with no base edge).
        self._ext_src: list[int] = []
        self._ext_dst: list[int] = []
        self._ext_alive: list[bool] = []
        self._ext_adj: dict[int, dict[int, int]] = {}

        # While the topology is pristine (no dead nodes, no cut edges,
        # no extension edges, no added nodes) the vectorized CSR fast
        # paths apply; any topology mutation clears the flag for good.
        self._simple = True

        # Lazy per-vertex incidence over base edges and (u, v) -> edge id
        # index; built on first topology mutation that needs them.
        self._inc_indptr: np.ndarray | None = None
        self._inc_eids: np.ndarray | None = None
        self._edge_index: dict[tuple[int, int], int] | None = None

        # Lazy union-find over dominated alive edges.
        self._dsu_parent: np.ndarray | None = None
        self._dsu_size: np.ndarray | None = None
        self._dsu_dirty = True
        self._pair_sum = 0

        # Delta log for checkpoint/rollback.
        self._log: list[tuple] = []
        self._logging = False
        self._suspend_log = False

        # Mutation listeners (the serving tier's label repairer).  Each
        # is called with ``(op, args)`` after every applied mutation —
        # including the inverse mutations a rollback replays, so a
        # subscriber sees the same state trajectory the engine does.
        self._listeners: list = []

        for b in brokers:
            self.add_broker(int(b))

    @classmethod
    def from_multigraph(
        cls, multigraph, brokers=(), *, backend: str = "python"
    ) -> "DominationEngine":
        """Build an engine over a multigraph's **simplified view**.

        Domination, coverage and connectivity are parallel-edge-blind (a
        bundle of links dominates exactly what one link dominates), so
        the engine runs on :meth:`MultiGraph.simplify` — with aggregated
        per-edge capacities, which enables the residual-capacity state
        (:meth:`reserve` / :meth:`release`) over bundle totals.
        """
        return cls(multigraph.simplify().graph, brokers, backend=backend)

    # ------------------------------------------------------------------
    # Read-only views and simple queries
    # ------------------------------------------------------------------

    @property
    def graph(self) -> ASGraph:
        return self._graph

    @property
    def num_nodes(self) -> int:
        """Allocated universe size (base nodes + churn arrivals)."""
        return self._num_nodes

    @property
    def num_alive(self) -> int:
        return self._num_alive

    @property
    def covered_view(self) -> np.ndarray:
        """Covered mask over the allocated universe.  Do not mutate."""
        return self._covered[: self._num_nodes]

    @property
    def broker_view(self) -> np.ndarray:
        """Broker roster mask over the allocated universe.  Do not mutate."""
        return self._broker[: self._num_nodes]

    @property
    def alive_view(self) -> np.ndarray:
        """Alive mask over the allocated universe.  Do not mutate."""
        return self._alive[: self._num_nodes]

    @property
    def hits_view(self) -> np.ndarray:
        """Per-vertex effective-broker hit counts.  Do not mutate."""
        return self._hits[: self._num_nodes]

    def brokers(self) -> list[int]:
        """Sorted broker roster (includes brokers on dead nodes)."""
        return [int(v) for v in np.flatnonzero(self.broker_view)]

    def is_broker(self, v: int) -> bool:
        return bool(self._broker[v])

    def is_alive(self, v: int) -> bool:
        return bool(self._alive[v])

    def is_covered(self, v: int) -> bool:
        return bool(self._covered[v])

    def coverage(self) -> int:
        """``f(B)`` over the live universe: covered AND alive vertices."""
        return self._covered_alive

    def coverage_fraction(self) -> float:
        if self._num_alive == 0:
            return 0.0
        return self._covered_alive / self._num_alive

    def effective_broker_mask(self) -> np.ndarray:
        """Brokers that actually dominate: broker AND alive."""
        return self.broker_view & self.alive_view

    def marginal_gain(self, v: int) -> int:
        """Newly covered vertices if ``v`` were added as a broker.

        Bit-identical to the historical ``CoverageOracle.marginal_gain``
        on a pristine topology; on a mutated topology it counts over
        alive edges and alive endpoints only.  A dead vertex gains 0.
        """
        self._check_vertex(v)
        if self._simple:
            if self._backend == "bitset":
                masks = self._bitset_masks()
                return (masks[v] & self._fresh_uncovered_bits()).bit_count()
            neigh = self._indices[self._indptr[v] : self._indptr[v + 1]]
            gain = 0 if self._covered[v] else 1
            return gain + int(np.count_nonzero(~self._covered[neigh]))
        if not self._alive[v]:
            return 0
        nbrs = self.alive_neighbors(v)
        gain = 0 if self._covered[v] else 1
        if len(nbrs):
            gain += int(np.count_nonzero(~self._covered[nbrs]))
        return gain

    def alive_neighbors(self, v: int) -> np.ndarray:
        """Neighbors of ``v`` across alive edges to alive endpoints."""
        self._check_vertex(v)
        if self._simple:
            return self._indices[self._indptr[v] : self._indptr[v + 1]]
        out: list[int] = []
        for eid in self._incident_base(v):
            if not self._edge_alive[eid]:
                continue
            u = int(self._base_src[eid])
            if u == v:
                u = int(self._base_dst[eid])
            if self._alive[u]:
                out.append(u)
        for u, eid in self._ext_adj.get(v, {}).items():
            if self._ext_alive[eid] and self._alive[u]:
                out.append(u)
        return np.asarray(out, dtype=np.int64) if out else _EMPTY

    # ------------------------------------------------------------------
    # Broker mutations
    # ------------------------------------------------------------------

    def add_broker(self, v: int) -> np.ndarray:
        """Add ``v`` to the roster; return the newly covered vertex ids.

        A no-op (empty return) if ``v`` is already a broker.  Adding a
        dead vertex is an error — restore it first.
        """
        self._check_vertex(v)
        if self._broker[v]:
            return _EMPTY
        if not self._alive[v]:
            raise AlgorithmError(f"cannot add dead vertex {v} as broker")
        self._broker[v] = True
        if self._simple:
            neigh = self._indices[self._indptr[v] : self._indptr[v + 1]]
            fresh = neigh[~self._covered[neigh]]
            self._hits[v] += 1
            self._hits[neigh] += 1
            self._covered[fresh] = True
            newly = fresh
            if not self._covered[v]:
                self._covered[v] = True
                newly = np.append(fresh, v)
            self._covered_alive += len(newly)
            if self._uncovered_bits is not None:
                self._uncovered_bits &= ~self._bitset_masks()[v]
            if self._dsu_parent is not None and not self._dsu_dirty:
                for u in neigh:
                    self._union(v, int(u))
            self._record("add_broker", v)
            return np.sort(newly)
        newly_list: list[int] = []
        self._hits[v] += 1
        if not self._covered[v]:
            self._covered[v] = True
            self._covered_alive += 1
            newly_list.append(v)
        nbrs = self.alive_neighbors(v)
        for u in nbrs:
            u = int(u)
            self._hits[u] += 1
            if not self._covered[u]:
                self._covered[u] = True
                self._covered_alive += 1
                newly_list.append(u)
        if self._dsu_parent is not None and not self._dsu_dirty:
            for u in nbrs:
                self._union(v, int(u))
        self._record("add_broker", v)
        return np.sort(np.asarray(newly_list, dtype=np.int64)) if newly_list else _EMPTY

    def remove_broker(self, v: int) -> np.ndarray:
        """Drop ``v`` from the roster; return the newly uncovered ids."""
        self._check_vertex(v)
        if not self._broker[v]:
            return _EMPTY
        self._broker[v] = False
        if not self._alive[v]:
            # A dead broker contributed nothing; only the roster changes.
            self._record("remove_broker", v)
            return _EMPTY
        if self._dsu_parent is not None:
            self._dsu_dirty = True
        if self._simple:
            self._uncovered_bits = None  # coverage shrinks: mirror is dirty
            neigh = self._indices[self._indptr[v] : self._indptr[v + 1]]
            self._hits[v] -= 1
            self._hits[neigh] -= 1
            lost = neigh[self._hits[neigh] == 0]
            self._covered[lost] = False
            newly = lost
            if self._hits[v] == 0:
                self._covered[v] = False
                newly = np.append(lost, v)
            self._covered_alive -= len(newly)
            self._record("remove_broker", v)
            return np.sort(newly)
        newly_list: list[int] = []
        self._hits[v] -= 1
        if self._hits[v] == 0:
            self._covered[v] = False
            self._covered_alive -= 1
            newly_list.append(v)
        for u in self.alive_neighbors(v):
            u = int(u)
            self._hits[u] -= 1
            if self._hits[u] == 0:
                self._covered[u] = False
                self._covered_alive -= 1
                newly_list.append(u)
        self._record("remove_broker", v)
        return np.sort(np.asarray(newly_list, dtype=np.int64)) if newly_list else _EMPTY

    # ------------------------------------------------------------------
    # Topology mutations
    # ------------------------------------------------------------------

    def fail_node(self, v: int) -> bool:
        """Take vertex ``v`` down (its incident edges carry nothing)."""
        self._check_vertex(v)
        if not self._alive[v]:
            return False
        self._leave_simple()
        if self._broker[v]:
            # Neighbors lose this broker's contribution.
            for u in self.alive_neighbors(v):
                u = int(u)
                self._hits[u] -= 1
                if self._hits[u] == 0:
                    self._covered[u] = False
                    self._covered_alive -= 1
        if self._covered[v]:
            self._covered[v] = False
            self._covered_alive -= 1
        self._hits[v] = 0
        self._alive[v] = False
        self._num_alive -= 1
        if self._dsu_parent is not None:
            self._dsu_dirty = True
        self._record("fail_node", v)
        return True

    def restore_node(self, v: int) -> bool:
        """Bring vertex ``v`` back up; alive incident edges revive."""
        self._check_vertex(v)
        if self._alive[v]:
            return False
        self._leave_simple()
        self._alive[v] = True
        self._num_alive += 1
        dsu_live = self._dsu_parent is not None and not self._dsu_dirty
        hits = 1 if self._broker[v] else 0
        for u in self.alive_neighbors(v):
            u = int(u)
            if self._broker[u]:
                hits += 1
            if self._broker[v]:
                self._hits[u] += 1
                if not self._covered[u]:
                    self._covered[u] = True
                    self._covered_alive += 1
            if dsu_live and (self._broker[v] or self._broker[u]):
                self._union(v, int(u))
        self._hits[v] = hits
        if hits > 0:
            self._covered[v] = True
            self._covered_alive += 1
        self._record("restore_node", v)
        return True

    def cut_link(self, u: int, v: int) -> bool:
        """Kill the edge between ``u`` and ``v`` (base or extension)."""
        self._check_vertex(u)
        self._check_vertex(v)
        eid, is_ext = self._find_edge(u, v)
        if eid is None:
            return False
        alive = self._ext_alive[eid] if is_ext else bool(self._edge_alive[eid])
        if not alive:
            return False
        self._leave_simple()
        if self._alive[u] and self._alive[v]:
            self._drop_edge_contribution(u, v)
            if self._dsu_parent is not None:
                self._dsu_dirty = True
        if is_ext:
            self._ext_alive[eid] = False
        else:
            self._edge_alive[eid] = False
        self._record("cut", u, v)
        return True

    def restore_link(self, u: int, v: int) -> bool:
        """Revive a previously cut edge between ``u`` and ``v``."""
        self._check_vertex(u)
        self._check_vertex(v)
        eid, is_ext = self._find_edge(u, v)
        if eid is None:
            return False
        alive = self._ext_alive[eid] if is_ext else bool(self._edge_alive[eid])
        if alive:
            return False
        self._leave_simple()
        if is_ext:
            self._ext_alive[eid] = True
        else:
            self._edge_alive[eid] = True
        if self._alive[u] and self._alive[v]:
            self._add_edge_contribution(u, v)
        self._record("restore", u, v)
        return True

    def add_link(self, u: int, v: int) -> bool:
        """Add an edge between alive vertices ``u`` and ``v``.

        Matches ``MutableTopology.add_link`` semantics: returns False
        for self-loops, dead/unallocated endpoints, or an existing alive
        edge.  A previously cut edge between the pair is revived instead
        of duplicated.
        """
        if u == v:
            return False
        if not (0 <= u < self._num_nodes and 0 <= v < self._num_nodes):
            return False
        if not (self._alive[u] and self._alive[v]):
            return False
        eid, is_ext = self._find_edge(u, v)
        if eid is not None:
            alive = self._ext_alive[eid] if is_ext else bool(self._edge_alive[eid])
            if alive:
                return False
            return self.restore_link(u, v)
        self._leave_simple()
        eid = len(self._ext_src)
        self._ext_src.append(int(u))
        self._ext_dst.append(int(v))
        self._ext_alive.append(True)
        self._ext_adj.setdefault(int(u), {})[int(v)] = eid
        self._ext_adj.setdefault(int(v), {})[int(u)] = eid
        self._add_edge_contribution(u, v)
        self._record("new_ext", u, v)
        return True

    def add_node(self, neighbors=()) -> int:
        """Allocate a new alive vertex and link it to ``neighbors``.

        Links to dead or unallocated neighbors are skipped, matching
        ``MutableTopology.add_node``.  Returns the new vertex id.
        """
        self._leave_simple()
        v = self._num_nodes
        self._ensure_capacity(v + 1)
        self._num_nodes = v + 1
        self._alive[v] = True
        self._broker[v] = False
        self._hits[v] = 0
        self._covered[v] = False
        self._num_alive += 1
        # The union-find arrays are sized to the old universe; drop them.
        self._dsu_parent = None
        self._dsu_size = None
        self._dsu_dirty = True
        self._record("add_node", v)
        for u in neighbors:
            self.add_link(v, int(u))
        return v

    # ------------------------------------------------------------------
    # Connectivity
    # ------------------------------------------------------------------

    def saturated_connectivity(self) -> float:
        """Saturated connectivity of the dominated subgraph ``B ⊙ A``.

        O(1) when the union-find is clean; otherwise one rebuild from
        the current dominated alive edge set.
        """
        n = self._num_nodes
        if n < 2:
            return 0.0
        if self._dsu_parent is None or self._dsu_dirty:
            self._rebuild_dsu()
        return self._pair_sum / (n * (n - 1))

    def connectivity_if_added(self, v: int) -> float:
        """Saturated connectivity if ``v`` were made a broker — O(deg(v)).

        Non-mutating probe: the only new dominated edges are those
        incident to ``v``, so the affected components are exactly those
        of ``{v} ∪ N_alive(v)``.
        """
        self._check_vertex(v)
        n = self._num_nodes
        if n < 2:
            return 0.0
        if self._dsu_parent is None or self._dsu_dirty:
            self._rebuild_dsu()
        if not self._alive[v]:
            return self._pair_sum / (n * (n - 1))
        roots = {self._find(v)}
        for u in self.alive_neighbors(v):
            roots.add(self._find(int(u)))
        merged = 0
        before = 0
        for r in roots:
            s = int(self._dsu_size[r])
            merged += s
            before += s * (s - 1)
        pair_sum = self._pair_sum + merged * (merged - 1) - before
        return pair_sum / (n * (n - 1))

    def component_labels(self) -> np.ndarray:
        """Canonical component labels of the dominated subgraph ``B ⊙ A``.

        Each vertex is labelled with the *smallest vertex id* in its
        component, so the labelling is independent of union-find
        internals and mutation history: two engines represent the same
        dominated-graph partition iff their label arrays are equal.
        Dead and isolated vertices are singleton components labelled by
        themselves.  Used by the convergence layer to compare the
        event-driven simulator's quiescent state against a state-based
        replay of the same schedule.
        """
        n = self._num_nodes
        if self._dsu_parent is None or self._dsu_dirty:
            self._rebuild_dsu()
        roots = np.fromiter(
            (self._find(v) for v in range(n)), dtype=np.int64, count=n
        )
        ids = np.arange(n, dtype=np.int64)
        mins = ids.copy()
        np.minimum.at(mins, roots, ids)
        return mins[roots]

    # ------------------------------------------------------------------
    # Dominated-subgraph exports
    # ------------------------------------------------------------------

    def dominated_base_edge_mask(self) -> np.ndarray:
        """Mask over the *base* edge list: alive edges with an effective
        broker endpoint and both endpoints alive."""
        eff = self._broker & self._alive
        keep = (
            self._edge_alive
            & self._alive[self._base_src]
            & self._alive[self._base_dst]
            & (eff[self._base_src] | eff[self._base_dst])
        )
        return keep

    def dominated_alive_edges(self) -> tuple[np.ndarray, np.ndarray]:
        """Endpoint arrays of every dominated alive edge (base + ext)."""
        keep = self.dominated_base_edge_mask()
        src = [self._base_src[keep]]
        dst = [self._base_dst[keep]]
        if self._ext_src:
            eff = self._broker & self._alive
            es, ed = [], []
            for eid, (s, d) in enumerate(zip(self._ext_src, self._ext_dst)):
                if not self._ext_alive[eid]:
                    continue
                if not (self._alive[s] and self._alive[d]):
                    continue
                if eff[s] or eff[d]:
                    es.append(s)
                    ed.append(d)
            src.append(np.asarray(es, dtype=np.int64))
            dst.append(np.asarray(ed, dtype=np.int64))
        return np.concatenate(src), np.concatenate(dst)

    def alive_degrees(self) -> np.ndarray:
        """Per-vertex degree counting alive edges between alive endpoints."""
        n = self._num_nodes
        keep = (
            self._edge_alive
            & self._alive[self._base_src]
            & self._alive[self._base_dst]
        )
        degrees = np.bincount(self._base_src[keep], minlength=n)
        degrees += np.bincount(self._base_dst[keep], minlength=n)
        for eid, (s, d) in enumerate(zip(self._ext_src, self._ext_dst)):
            if self._ext_alive[eid] and self._alive[s] and self._alive[d]:
                degrees[s] += 1
                degrees[d] += 1
        return degrees.astype(np.int64)

    def alive_edges(self) -> list[tuple[int, int]]:
        """Sorted ``(u, v)`` pairs (``u < v``) of alive edges between
        alive endpoints, base and extension alike."""
        keep = (
            self._edge_alive
            & self._alive[self._base_src]
            & self._alive[self._base_dst]
        )
        pairs = [
            (int(min(s, d)), int(max(s, d)))
            for s, d in zip(self._base_src[keep], self._base_dst[keep])
        ]
        for eid, (s, d) in enumerate(zip(self._ext_src, self._ext_dst)):
            if self._ext_alive[eid] and self._alive[s] and self._alive[d]:
                pairs.append((min(s, d), max(s, d)))
        pairs.sort()
        return pairs

    # ------------------------------------------------------------------
    # Residual link capacity (annotated graphs only)
    # ------------------------------------------------------------------

    @property
    def has_capacity_state(self) -> bool:
        """True when the underlying graph carries edge attributes."""
        return self._capacity is not None

    def _require_capacity(self) -> tuple[np.ndarray, np.ndarray]:
        if self._capacity is None or self._reserved is None:
            raise AlgorithmError(
                "graph carries no edge attributes; build the engine from an "
                "annotated ASGraph or via DominationEngine.from_multigraph"
            )
        return self._capacity, self._reserved

    def residual_capacity(self) -> np.ndarray:
        """Unreserved Gbps per base edge (a fresh array, safe to mutate)."""
        capacity, reserved = self._require_capacity()
        return capacity - reserved

    def reserved_view(self) -> np.ndarray:
        """Read-only view of the per-edge reserved Gbps."""
        _, reserved = self._require_capacity()
        view = reserved.view()
        view.flags.writeable = False
        return view

    def _coerce_reservation(
        self, edge_ids, amounts
    ) -> tuple[np.ndarray, np.ndarray]:
        edge_ids = np.atleast_1d(np.asarray(edge_ids, dtype=np.int64))
        amounts = np.atleast_1d(np.asarray(amounts, dtype=np.float64))
        if amounts.shape != edge_ids.shape:
            raise AlgorithmError(
                f"edge_ids/amounts shape mismatch: {edge_ids.shape} vs "
                f"{amounts.shape}"
            )
        m = len(self._base_src)
        if len(edge_ids) and (edge_ids.min() < 0 or edge_ids.max() >= m):
            raise AlgorithmError(f"edge id out of range [0, {m})")
        if len(amounts) and ((amounts <= 0).any() or not np.isfinite(amounts).all()):
            raise AlgorithmError("reservation amounts must be positive and finite")
        return edge_ids, amounts

    def reserve(self, edge_ids, amounts) -> None:
        """Atomically reserve ``amounts`` Gbps on base edges ``edge_ids``.

        Vectorized and all-or-nothing: repeated edge ids accumulate, and
        if *any* edge would exceed its capacity (or is currently cut)
        the whole reservation is rejected with an :class:`AlgorithmError`
        and no state changes.  Logged for :meth:`rollback` like every
        other mutation.
        """
        capacity, reserved = self._require_capacity()
        edge_ids, amounts = self._coerce_reservation(edge_ids, amounts)
        if not self._edge_alive[edge_ids].all():
            raise AlgorithmError("cannot reserve capacity on a cut link")
        demand = np.zeros(len(capacity), dtype=np.float64)
        np.add.at(demand, edge_ids, amounts)
        touched = np.flatnonzero(demand)
        over = reserved[touched] + demand[touched] > capacity[touched] + 1e-9
        if over.any():
            bad = int(touched[np.argmax(over)])
            raise AlgorithmError(
                f"insufficient residual capacity on edge {bad}: "
                f"{capacity[bad] - reserved[bad]:.3f} Gbps free, "
                f"{demand[bad]:.3f} Gbps requested"
            )
        reserved[touched] += demand[touched]
        self._record("reserve", edge_ids.copy(), amounts.copy())

    def release(self, edge_ids, amounts) -> None:
        """Release previously reserved capacity (inverse of :meth:`reserve`).

        Atomic like :meth:`reserve`: releasing more than is currently
        reserved on any edge rejects the whole call.
        """
        capacity, reserved = self._require_capacity()
        edge_ids, amounts = self._coerce_reservation(edge_ids, amounts)
        refund = np.zeros(len(capacity), dtype=np.float64)
        np.add.at(refund, edge_ids, amounts)
        touched = np.flatnonzero(refund)
        if (refund[touched] > reserved[touched] + 1e-9).any():
            raise AlgorithmError("cannot release more capacity than is reserved")
        reserved[touched] = np.maximum(reserved[touched] - refund[touched], 0.0)
        self._record("release", edge_ids.copy(), amounts.copy())

    # ------------------------------------------------------------------
    # Checkpoint / rollback
    # ------------------------------------------------------------------

    def checkpoint(self) -> int:
        """Start (or mark a point in) the undo log; returns a token."""
        self._logging = True
        return len(self._log)

    def rollback(self, token: int) -> None:
        """Undo every mutation after ``token`` (in reverse order).

        Inverses restore *observable* state exactly: hit counts, covered
        mask, alive masks, roster, and the universe size (a rolled-back
        :meth:`add_node` is deallocated, so the connectivity denominator
        shrinks back too).  Internal bookkeeping such as dead
        extension-edge records may differ, which :meth:`verify` treats
        as equivalent.
        """
        if token < 0 or token > len(self._log):
            raise AlgorithmError(f"invalid rollback token {token}")
        self._suspend_log = True
        try:
            while len(self._log) > token:
                entry = self._log.pop()
                op = entry[0]
                if op == "add_broker":
                    self.remove_broker(entry[1])
                elif op == "remove_broker":
                    if self._alive[entry[1]]:
                        self.add_broker(entry[1])
                    else:
                        # Mirror of the dead-roster-flip branch: a dead
                        # broker contributes nothing, so only the roster
                        # bit comes back.
                        self._broker[entry[1]] = True
                elif op == "fail_node":
                    self.restore_node(entry[1])
                elif op == "restore_node":
                    self.fail_node(entry[1])
                elif op == "cut":
                    self.restore_link(entry[1], entry[2])
                elif op in ("restore", "new_ext"):
                    self.cut_link(entry[1], entry[2])
                elif op == "add_node":
                    self._deallocate_node(entry[1])
                elif op in ("reserve", "release"):
                    # Apply the inverse delta directly: the public methods
                    # re-validate against *current* aliveness, which may
                    # legitimately differ mid-rollback.  LIFO order makes
                    # the inverse always consistent.
                    ids, amts = entry[1], entry[2]
                    _, reserved = self._require_capacity()
                    delta = np.zeros(len(reserved), dtype=np.float64)
                    np.add.at(delta, ids, amts)
                    if op == "reserve":
                        np.maximum(reserved - delta, 0.0, out=reserved)
                        self._record("release", ids, amts)
                    else:
                        reserved += delta
                        self._record("reserve", ids, amts)
                else:  # pragma: no cover - defensive
                    raise AlgorithmError(f"unknown log entry {op!r}")
        finally:
            self._suspend_log = False
        if self._dsu_parent is not None:
            self._dsu_dirty = True

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------

    def verify(self) -> bool:
        """Recompute all maintained state from scratch; raise on drift."""
        n = self._num_nodes
        alive = self._alive[:n]
        eff = self._broker[:n] & alive
        hits = np.zeros(n, dtype=np.int64)
        hits[eff] += 1
        keep = (
            self._edge_alive & alive[self._base_src] & alive[self._base_dst]
        )
        src = self._base_src[keep]
        dst = self._base_dst[keep]
        np.add.at(hits, dst, eff[src].astype(np.int64))
        np.add.at(hits, src, eff[dst].astype(np.int64))
        for eid, (s, d) in enumerate(zip(self._ext_src, self._ext_dst)):
            if not self._ext_alive[eid] or not (alive[s] and alive[d]):
                continue
            if eff[s]:
                hits[d] += 1
            if eff[d]:
                hits[s] += 1
        covered = alive & (hits > 0)
        if not np.array_equal(hits, self._hits[:n]):
            raise AlgorithmError("engine hit counts diverged from recomputation")
        if not np.array_equal(covered, self._covered[:n]):
            raise AlgorithmError("engine covered mask diverged from recomputation")
        if int(np.count_nonzero(covered)) != self._covered_alive:
            raise AlgorithmError("engine covered-alive counter diverged")
        if int(np.count_nonzero(alive)) != self._num_alive:
            raise AlgorithmError("engine alive counter diverged")
        if n >= 2:
            expected = self._from_scratch_connectivity()
            got = self.saturated_connectivity()
            if got != expected:
                raise AlgorithmError(
                    "engine connectivity diverged from recomputation: "
                    f"{got!r} != {expected!r}"
                )
        if self._capacity is not None and self._reserved is not None:
            if (self._reserved < -1e-9).any():
                raise AlgorithmError("negative reserved capacity")
            if (self._reserved > self._capacity + 1e-9).any():
                raise AlgorithmError("reserved capacity exceeds link capacity")
        return True

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < self._num_nodes:
            raise AlgorithmError(
                f"vertex {v} out of range for universe of {self._num_nodes}"
            )

    def _leave_simple(self) -> None:
        if self._simple:
            self._simple = False
            # The bitset mirror only models the pristine topology; the
            # general paths fall back to the covered-mask arrays.
            self._uncovered_bits = None

    def _bitset_masks(self) -> list[int]:
        """Closed-neighborhood int masks (cached per graph)."""
        if self._nbhd_masks is None:
            from repro.core.bitset import closed_neighborhood_masks

            self._nbhd_masks = closed_neighborhood_masks(self._graph)
        return self._nbhd_masks

    def _fresh_uncovered_bits(self) -> int:
        """The uncovered-set mask, rebuilt from ``_covered`` when dirty."""
        bits = self._uncovered_bits
        if bits is None:
            n = self._n_base
            packed = np.packbits(self._covered[:n], bitorder="little")
            bits = ((1 << n) - 1) & ~int.from_bytes(packed.tobytes(), "little")
            self._uncovered_bits = bits
        return bits

    def _deallocate_node(self, v: int) -> None:
        """Reverse :meth:`add_node` during rollback.

        The LIFO undo order guarantees ``v`` is the newest vertex and
        every later mutation touching it has already been undone, so at
        this point it is alive, non-broker, uncovered, with zero hits
        and all its extension edges cut.  Returning the id to the
        unallocated pool shrinks the universe — and the connectivity
        denominator — back to the pre-``add_node`` value.  The dead
        extension-edge records are purged from the adjacency so a later
        allocation reusing the id cannot revive them.
        """
        if v != self._num_nodes - 1:  # pragma: no cover - defensive
            raise AlgorithmError(
                f"cannot deallocate vertex {v}; newest is {self._num_nodes - 1}"
            )
        self._leave_simple()
        for u, eid in self._ext_adj.pop(v, {}).items():
            peer = self._ext_adj.get(u)
            if peer is not None:
                peer.pop(v, None)
                if not peer:
                    del self._ext_adj[u]
            self._ext_alive[eid] = False
        if self._covered[v]:  # pragma: no cover - defensive
            self._covered_alive -= 1
        if self._alive[v]:
            self._num_alive -= 1
        self._broker[v] = False
        self._alive[v] = False
        self._hits[v] = 0
        self._covered[v] = False
        self._num_nodes = v
        # The union-find arrays are sized to the grown universe; drop them.
        self._dsu_parent = None
        self._dsu_size = None
        self._dsu_dirty = True
        for listener in self._listeners:
            listener("deallocate_node", (v,))

    def _ensure_capacity(self, n: int) -> None:
        cap = len(self._broker)
        if n <= cap:
            return
        new_cap = max(n, cap * 2)
        for name in ("_broker", "_alive", "_hits", "_covered"):
            old = getattr(self, name)
            grown = np.zeros(new_cap, dtype=old.dtype)
            grown[: len(old)] = old
            setattr(self, name, grown)

    def _ensure_incidence(self) -> None:
        if self._inc_indptr is not None:
            return
        m = len(self._base_src)
        ends = np.concatenate([self._base_src, self._base_dst])
        eids = np.concatenate([np.arange(m), np.arange(m)])
        order = np.argsort(ends, kind="stable")
        self._inc_eids = eids[order]
        counts = np.bincount(ends, minlength=self._n_base)
        indptr = np.zeros(self._n_base + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        self._inc_indptr = indptr

    def _incident_base(self, v: int) -> np.ndarray:
        if v >= self._n_base:
            return _EMPTY
        self._ensure_incidence()
        return self._inc_eids[self._inc_indptr[v] : self._inc_indptr[v + 1]]

    def _find_edge(self, u: int, v: int) -> tuple[int | None, bool]:
        """Locate the edge record for the pair: (edge id, is_extension)."""
        eid = self._ext_adj.get(u, {}).get(v)
        if eid is not None:
            return eid, True
        if self._edge_index is None:
            self._edge_index = {
                (int(min(s, d)), int(max(s, d))): i
                for i, (s, d) in enumerate(zip(self._base_src, self._base_dst))
            }
        key = (min(u, v), max(u, v))
        base = self._edge_index.get(key)
        if base is not None:
            return int(base), False
        return None, False

    def _drop_edge_contribution(self, u: int, v: int) -> None:
        """Coverage updates for removing one alive edge between alive
        endpoints (the edge record itself is flipped by the caller)."""
        if self._broker[u]:
            self._hits[v] -= 1
            if self._hits[v] == 0:
                self._covered[v] = False
                self._covered_alive -= 1
        if self._broker[v]:
            self._hits[u] -= 1
            if self._hits[u] == 0:
                self._covered[u] = False
                self._covered_alive -= 1

    def _add_edge_contribution(self, u: int, v: int) -> None:
        """Coverage (and clean union-find) updates for one new alive
        edge between alive endpoints."""
        dominated = False
        if self._broker[u]:
            dominated = True
            self._hits[v] += 1
            if not self._covered[v]:
                self._covered[v] = True
                self._covered_alive += 1
        if self._broker[v]:
            dominated = True
            self._hits[u] += 1
            if not self._covered[u]:
                self._covered[u] = True
                self._covered_alive += 1
        if dominated and self._dsu_parent is not None and not self._dsu_dirty:
            self._union(u, v)

    def _record(self, op: str, *args) -> None:
        if self._logging and not self._suspend_log:
            self._log.append((op, *args))
        for listener in self._listeners:
            listener(op, args)

    # -- mutation listeners --------------------------------------------

    def subscribe(self, listener) -> "Callable[[], None]":
        """Call ``listener(op, args)`` after every applied mutation.

        The stream is the engine's own mutation vocabulary
        (``add_broker`` / ``remove_broker`` / ``fail_node`` /
        ``restore_node`` / ``cut`` / ``restore`` / ``new_ext`` /
        ``add_node`` / ``deallocate_node``); rollbacks surface as the
        inverse mutations they replay.  Listeners must not mutate the
        engine.  Returns an unsubscribe callable.
        """
        self._listeners.append(listener)

        def unsubscribe() -> None:
            try:
                self._listeners.remove(listener)
            except ValueError:
                pass

        return unsubscribe

    # -- union-find ----------------------------------------------------

    def _find(self, x: int) -> int:
        parent = self._dsu_parent
        root = x
        while parent[root] != root:
            root = int(parent[root])
        while parent[x] != root:
            parent[x], x = root, int(parent[x])
        return root

    def _union(self, a: int, b: int) -> None:
        ra = self._find(a)
        rb = self._find(b)
        if ra == rb:
            return
        size = self._dsu_size
        if size[ra] < size[rb]:
            ra, rb = rb, ra
        sa = int(size[ra])
        sb = int(size[rb])
        self._pair_sum += (sa + sb) * (sa + sb - 1) - sa * (sa - 1) - sb * (sb - 1)
        self._dsu_parent[rb] = ra
        size[ra] = sa + sb

    def _rebuild_dsu(self) -> None:
        n = self._num_nodes
        src, dst = self.dominated_alive_edges()
        if len(src):
            mat = sparse.coo_matrix(
                (np.ones(len(src), dtype=np.int8), (src, dst)), shape=(n, n)
            )
            _, labels = connected_components(mat)
        else:
            labels = np.arange(n)
        _, rep, counts = np.unique(labels, return_index=True, return_counts=True)
        parent = rep[labels].astype(np.int64)
        size = np.ones(n, dtype=np.int64)
        size[rep] = counts
        self._dsu_parent = parent
        self._dsu_size = size
        self._pair_sum = int(np.sum(counts * (counts - 1)))
        self._dsu_dirty = False

    def _from_scratch_connectivity(self) -> float:
        """Independent recomputation used by :meth:`verify` — mirrors
        :func:`repro.core.connectivity.saturated_connectivity`."""
        n = self._num_nodes
        if n < 2:
            return 0.0
        src, dst = self.dominated_alive_edges()
        if len(src) == 0:
            return 0.0
        mat = sparse.coo_matrix(
            (np.ones(len(src), dtype=np.int8), (src, dst)), shape=(n, n)
        )
        _, labels = connected_components(mat)
        sizes = np.bincount(labels).astype(np.float64)
        return float((sizes * (sizes - 1)).sum() / (n * (n - 1)))
