"""Baseline broker-selection algorithms (Section 5.1 / Fig. 2).

* **SC** — the randomized Set-Cover-style dominating-set heuristic of the
  paper's [31]: scan vertices in random order, adding each vertex that is
  not yet dominated.  Guarantees a dominating set (100 % saturated
  coverage) but with no size control — Fig. 2a shows it needs ~76 % of all
  vertices.
* **IXPB** — IXPs whose degree exceeds a threshold, modelling the
  CXP-style proposals that rely solely on exchange points.
* **Tier1Only** — only tier-1 ISPs.
* **DB** — top-k vertices by degree.
* **PRB** — top-k vertices by PageRank.
* **Random** — uniform sample (sanity floor).

All return broker lists compatible with the connectivity engine so every
algorithm is evaluated under identical metrics.
"""

from __future__ import annotations

import numpy as np

from repro.core.engine import DominationEngine
from repro.exceptions import AlgorithmError
from repro.graph.asgraph import ASGraph
from repro.graph.metrics import pagerank
from repro.utils.rng import SeedLike, ensure_rng


def set_cover_dominating(
    graph: ASGraph, *, seed: SeedLike = None, order: np.ndarray | None = None
) -> list[int]:
    """Randomized dominating-set heuristic (the SC baseline).

    Processes vertices in a random permutation and adds every vertex that
    is not yet dominated (neither itself nor any neighbour is a broker).
    The result always dominates the whole graph; its *size* is a random
    variable whose CDF over repeated runs is Fig. 2a.
    """
    n = graph.num_nodes
    if order is None:
        order = ensure_rng(seed).permutation(n)
    else:
        order = np.asarray(order, dtype=np.int64)
        if sorted(order.tolist()) != list(range(n)):
            raise AlgorithmError("order must be a permutation of all vertices")
    engine = DominationEngine(graph)
    brokers: list[int] = []
    for v in order:
        v = int(v)
        if engine.is_covered(v):
            continue
        brokers.append(v)
        engine.add_broker(v)
    return brokers


def ixp_based(graph: ASGraph, *, degree_threshold: int = 0) -> list[int]:
    """All IXPs with degree above ``degree_threshold`` (the IXPB baseline).

    With the default threshold this is "every IXP as a broker" — the
    322-broker configuration of Table 1's CXP row.
    """
    if degree_threshold < 0:
        raise AlgorithmError("degree_threshold must be >= 0")
    degrees = graph.degrees()
    ixps = graph.ixp_ids()
    return [int(v) for v in ixps if degrees[v] > degree_threshold]


def tier1_only(graph: ASGraph) -> list[int]:
    """All tier-1 ISPs (the Tier1Only baseline)."""
    return [int(v) for v in graph.tier1_ids()]


def degree_based(graph: ASGraph, budget: int) -> list[int]:
    """Top ``budget`` vertices by degree (the DB baseline).

    Ties broken towards smaller vertex ids for determinism.
    """
    _check_budget(graph, budget)
    degrees = graph.degrees()
    # argsort on (-degree, id): stable sort over ids then stable by -degree.
    order = np.argsort(-degrees, kind="stable")
    return [int(v) for v in order[:budget]]


def pagerank_based(
    graph: ASGraph, budget: int, *, damping: float = 0.85
) -> list[int]:
    """Top ``budget`` vertices by PageRank (the PRB baseline)."""
    _check_budget(graph, budget)
    scores = pagerank(graph, damping=damping)
    order = np.argsort(-scores, kind="stable")
    return [int(v) for v in order[:budget]]


def random_brokers(graph: ASGraph, budget: int, *, seed: SeedLike = None) -> list[int]:
    """Uniformly random broker set — the sanity floor for comparisons."""
    _check_budget(graph, budget)
    rng = ensure_rng(seed)
    return [int(v) for v in rng.choice(graph.num_nodes, size=budget, replace=False)]


def _check_budget(graph: ASGraph, budget: int) -> None:
    if budget < 1:
        raise AlgorithmError(f"budget must be >= 1, got {budget}")
    if budget > graph.num_nodes:
        raise AlgorithmError(f"budget {budget} exceeds |V| = {graph.num_nodes}")
