"""Algorithm 2 — approximation algorithm for MCBG on an (α, β)-graph.

The broker budget ``k`` is split in two:

* ``B^p`` — ``x*`` brokers pre-selected by greedy maximum coverage
  (Algorithm 1), where ``x* = ⌊(k + h − 1) / h⌋`` with ``h = ⌈β/2⌉`` is
  the largest integer satisfying ``x* + (x* − 1)(h − 1) <= k``;
* ``B^r`` — repair brokers added along shortest paths from every other
  pre-selected broker to a chosen *root* broker, taking alternate interior
  vertices so each stitched path becomes ``(B^p ∪ B^r)``-dominated.  Every
  root in ``B^p`` is tried and the one minimizing ``|B^r|`` wins (the
  ``min`` in lines 8–10 of the paper's pseudocode).

On a (0.99, 4)-graph this yields the paper's constant-factor guarantee
``(1 − 1/e)/θ`` against the optimal MCBG solution (Theorem 3).

Complexity: greedy pre-selection ``O(x*(|V| + |E|))`` (lazy variant much
faster in practice) plus one BFS per candidate root —
``O(x*(|V| + |E|))`` for unweighted graphs, matching the paper's
``O(k²(|V| log |V| + |E|))`` bound which assumed Dijkstra.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.greedy import lazy_greedy_max_coverage
from repro.exceptions import AlgorithmError
from repro.graph.asgraph import ASGraph
from repro.graph.csr import bfs_parents
from repro.obs import add_counter, get_tracer, observe, profiled


def repair_budget_split(budget: int, beta: int) -> tuple[int, int]:
    """Compute ``(x*, h)`` for Algorithm 2's budget split.

    ``h = ⌈β/2⌉`` is the worst-case number of extra brokers needed per
    stitched pre-broker (one endpoint plus alternate interior vertices of a
    ≤ β-hop path); ``x*`` is the largest pre-selection size such that
    ``x* + (x* − 1)(h − 1) <= budget``.
    """
    if budget < 1:
        raise AlgorithmError(f"budget must be >= 1, got {budget}")
    if beta < 1:
        raise AlgorithmError(f"beta must be >= 1, got {beta}")
    h = math.ceil(beta / 2)
    x_star = (budget + h - 1) // h
    x_star = max(min(x_star, budget), 1)
    return x_star, h


@dataclass(frozen=True)
class ApproxMCBGResult:
    """Output of Algorithm 2 with its internal decomposition exposed."""

    brokers: list[int]
    pre_selected: list[int]
    repair: list[int]
    root: int
    beta: int
    x_star: int

    @property
    def size(self) -> int:
        return len(self.brokers)


def _interior_repairs(path: list[int]) -> list[int]:
    """Alternate interior vertices making ``path`` dominated.

    Both endpoints are brokers already.  For a path ``b0, n1, n2, …, b1``
    taking ``n2, n4, …`` covers every interior edge: edge ``(n_{2i},
    n_{2i+1})`` gets its left endpoint, edge ``(n_{2i+1}, n_{2i+2})`` its
    right, and the first/last edges are covered by the endpoint brokers.
    For a path of length L this adds ``⌊(L − 1)/2⌋ <= ⌈β/2⌉ − 1`` vertices
    when ``L <= β``.
    """
    return [path[i] for i in range(2, len(path) - 1, 2)]


@profiled("kernel.approx_mcbg")
def approx_mcbg(
    graph: ASGraph,
    budget: int,
    *,
    beta: int = 4,
    root_strategy: str = "best",
    mode: str = "paper",
) -> ApproxMCBGResult:
    """Run Algorithm 2.

    Parameters
    ----------
    beta:
        The (α, β)-graph hop bound; 4 for AS-level Internet topologies
        (Definition 2 / Corollary 1).  Use
        :func:`repro.graph.paths.estimate_alpha_beta` to measure it.
    root_strategy:
        ``"best"`` evaluates every pre-selected broker as root and keeps
        the smallest repair set (the paper's loop); ``"first"`` uses the
        first pre-selected broker only (ablation A-root — one BFS instead
        of ``x*``).
    mode:
        ``"paper"`` treats ``budget`` as the pre-selection size and adds
        repair brokers on top — this is how the paper's evaluation reports
        its approximation sets (e.g. 1,000 pre-brokers growing to 1,064
        with repairs).  ``"strict"`` enforces ``|B| <= budget`` by
        splitting the budget into ``x*`` pre-brokers plus a repair reserve
        (the Theorem 3 analysis), trimming if repairs overflow.

    Notes
    -----
    Shortest paths between pre-brokers can exceed ``β`` (probability
    ≤ 1 − α per pair); repairs are still added along the whole path so the
    returned set always provides dominating paths among all pre-brokers in
    the same component.
    """
    if root_strategy not in ("best", "first"):
        raise AlgorithmError(f"unknown root strategy {root_strategy!r}")
    if mode not in ("paper", "strict"):
        raise AlgorithmError(f"unknown mode {mode!r}")
    if mode == "paper":
        x_star = budget
    else:
        x_star, _h = repair_budget_split(budget, beta)
    tracer = get_tracer()
    with tracer.span("approx_mcbg.preselect", x_star=x_star):
        pre = lazy_greedy_max_coverage(graph, x_star)
    if not pre:
        raise AlgorithmError("greedy pre-selection returned no brokers")

    roots = pre if root_strategy == "best" else pre[:1]
    best_repair: set[int] | None = None
    best_root = roots[0]
    pre_set = set(pre)
    for root in roots:
        with tracer.span("approx_mcbg.stitch", root=root) as span:
            parent = bfs_parents(graph.adj, root)
            repair: set[int] = set()
            for v in pre:
                if v == root:
                    continue
                if parent[v] == -1:
                    continue  # different component — no path to stitch
                path = [v]
                while path[-1] != root:
                    path.append(int(parent[path[-1]]))
                repair.update(
                    w for w in _interior_repairs(path) if w not in pre_set
                )
            span.set(repair_size=len(repair))
        if best_repair is None or len(repair) < len(best_repair):
            best_repair = repair
            best_root = root
    assert best_repair is not None
    add_counter("kernel.approx_mcbg.roots_tried", len(roots))
    observe("kernel.approx_mcbg.repair_size", len(best_repair))

    brokers = list(pre) + sorted(best_repair)
    if mode == "strict" and len(brokers) > budget:
        # Trim repairs beyond the budget (rare: only when many pre-broker
        # pairs exceed beta hops). Pre-selected brokers are kept — they
        # carry the coverage guarantee.
        brokers = brokers[:budget]
        best_repair = set(brokers) - pre_set
    return ApproxMCBGResult(
        brokers=brokers,
        pre_selected=list(pre),
        repair=sorted(best_repair),
        root=best_root,
        beta=beta,
        x_star=x_star,
    )
