"""B-dominating paths and the dominated graph ``B ⊙ A``.

Definition 1 of the paper: a path is *B-dominated* when every hop (edge)
has at least one endpoint in the broker set ``B``.  Equivalently, the path
lives inside the **dominated graph** — the spanning subgraph that keeps
exactly the edges incident to ``B``.  Section 5.2 writes this as the
operator ``B ⊙ A`` erasing all adjacency entries whose row *and* column
both fall outside ``B``.

This module materializes that operator (as a SciPy CSR matrix so the
connectivity engine can run batched BFS on it) and provides the exact
verifiers used by tests and by the MCBG solution checker.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np
from scipy import sparse

from repro.exceptions import AlgorithmError
from repro.graph.asgraph import ASGraph
from repro.graph.csr import build_csr, bfs_levels, UNREACHABLE


def broker_mask(graph: ASGraph, brokers: Iterable[int]) -> np.ndarray:
    """Boolean indicator array of the broker set."""
    mask = np.zeros(graph.num_nodes, dtype=bool)
    for v in brokers:
        if not 0 <= v < graph.num_nodes:
            raise AlgorithmError(f"broker id {v} out of range")
        mask[v] = True
    return mask


def dominated_edge_mask(graph: ASGraph, mask: np.ndarray) -> np.ndarray:
    """Which undirected edges survive ``B ⊙ A`` (>= 1 endpoint in B)."""
    return mask[graph.edge_src] | mask[graph.edge_dst]


def dominated_matrix(
    graph: ASGraph, brokers: Iterable[int] | np.ndarray
) -> sparse.csr_matrix:
    """The dominated graph ``B ⊙ A`` as a symmetric CSR matrix.

    Any path in this matrix is B-dominated by construction, so l-hop E2E
    connectivity under the brokerage scheme is plain BFS reachability here.
    """
    mask = (
        np.asarray(brokers, dtype=bool)
        if isinstance(brokers, np.ndarray) and brokers.dtype == bool
        else broker_mask(graph, brokers)
    )
    keep = dominated_edge_mask(graph, mask)
    src = graph.edge_src[keep]
    dst = graph.edge_dst[keep]
    adj = build_csr(graph.num_nodes, src, dst, symmetric=True)
    return adj.to_scipy()


def dominated_adjacency(graph: ASGraph, brokers: Iterable[int] | np.ndarray):
    """The dominated graph as a :class:`CSRAdjacency` (for exact BFS)."""
    mask = (
        np.asarray(brokers, dtype=bool)
        if isinstance(brokers, np.ndarray) and brokers.dtype == bool
        else broker_mask(graph, brokers)
    )
    keep = dominated_edge_mask(graph, mask)
    return build_csr(graph.num_nodes, graph.edge_src[keep], graph.edge_dst[keep])


def is_dominating_path(graph_or_mask, path: Sequence[int], brokers=None) -> bool:
    """Check Definition 1 directly on an explicit vertex sequence.

    Accepts either ``(graph, path, brokers)`` or ``(mask, path)`` where
    ``mask`` is a boolean broker indicator.  The path must be non-empty;
    a single vertex is trivially dominated (there are no hops).
    """
    if isinstance(graph_or_mask, ASGraph):
        if brokers is None:
            raise AlgorithmError("brokers required when passing a graph")
        mask = broker_mask(graph_or_mask, brokers)
    else:
        mask = np.asarray(graph_or_mask, dtype=bool)
    if len(path) == 0:
        raise AlgorithmError("path must contain at least one vertex")
    for a, b in zip(path[:-1], path[1:]):
        if not (mask[a] or mask[b]):
            return False
    return True


def has_dominating_path(
    graph: ASGraph, brokers: Iterable[int], source: int, target: int
) -> bool:
    """Is there *any* B-dominated path from ``source`` to ``target``?

    Exact check: BFS on the dominated graph.  This is the constraint of
    Problems 1 and 2 for a single pair.
    """
    if source == target:
        return True
    adj = dominated_adjacency(graph, brokers)
    dist = bfs_levels(adj, source)
    return dist[target] != UNREACHABLE


def dominating_path_length(
    graph: ASGraph, brokers: Iterable[int], source: int, target: int
) -> int:
    """Hop length of the shortest B-dominated path (-1 if none).

    Comparing against the unconstrained shortest path measures *path
    inflation* (Section 6.2, Table 4).
    """
    if source == target:
        return 0
    adj = dominated_adjacency(graph, brokers)
    dist = bfs_levels(adj, source)
    return int(dist[target])


def brokers_mutually_connected(graph: ASGraph, brokers: Sequence[int]) -> bool:
    """Do all brokers share one component of the dominated graph?

    This is the structural condition that makes the MCBG guarantee hold:
    when true, every pair in ``B ∪ N(B)`` has a B-dominated path (reach a
    broker in one dominated hop, then travel between brokers inside the
    dominated graph).
    """
    brokers = list(brokers)
    if len(brokers) <= 1:
        return True
    adj = dominated_adjacency(graph, brokers)
    dist = bfs_levels(adj, brokers[0])
    return all(dist[b] != UNREACHABLE for b in brokers[1:])


def verify_mcbg_solution(
    graph: ASGraph,
    brokers: Sequence[int],
    budget: int,
    *,
    sample_pairs: int = 200,
    seed: int = 0,
) -> dict:
    """Validate an MCBG solution against Problem 2's three constraints.

    Returns a report dict with keys ``size_ok``, ``coverage``,
    ``pairs_checked`` and ``dominating_path_ok`` (the latter verified on
    ``sample_pairs`` random covered pairs — exact all-pairs verification is
    quadratic and available through the connectivity engine instead).
    """
    from repro.core.coverage import covered_mask

    rng = np.random.default_rng(seed)
    brokers = list(dict.fromkeys(int(b) for b in brokers))
    mask = covered_mask(graph, brokers)
    covered = np.flatnonzero(mask)
    adj = dominated_adjacency(graph, brokers)
    ok = True
    checked = 0
    if len(covered) >= 2 and brokers:
        # Verify connectivity inside the dominated graph component-wise:
        # pick random sources among covered nodes, confirm their dominated
        # component covers the same covered nodes the full graph would.
        for _ in range(sample_pairs):
            u, v = rng.choice(covered, size=2, replace=False)
            du = bfs_levels(adj, int(u))
            checked += 1
            if du[int(v)] == UNREACHABLE:
                # Only a violation if u and v are connected in G at all.
                full_dist = bfs_levels(graph.adj, int(u))
                if full_dist[int(v)] != UNREACHABLE:
                    ok = False
                    break
    return {
        "size_ok": len(brokers) <= budget,
        "coverage": int(mask.sum()),
        "pairs_checked": checked,
        "dominating_path_ok": ok,
    }
