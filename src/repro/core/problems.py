"""Problem formulations (Problems 1–4) as first-class objects.

The paper defines a family of four problems.  These dataclasses pin down
instances and provide *feasibility checkers* — exact predicates that tests
and solvers use to certify solutions:

* **Problem 1 (PDS)** — decision: is there ``B``, ``|B| <= k``, giving a
  B-dominating path between *every* pair of vertices?
* **Problem 2 (MCBG)** — maximize ``f(B) = |B ∪ N(B)|`` subject to
  ``|B| <= k`` and the dominating-path guarantee among covered pairs.
* **Problem 3 (MCB)** — maximize ``f(B)``, size constraint only.
* **Problem 4** — MCBG plus per-pair path-length parameters, evaluated
  stochastically via Eq. (4) (see :mod:`repro.core.pathlength`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.coverage import covered_mask, coverage_value
from repro.core.domination import dominated_adjacency
from repro.exceptions import AlgorithmError
from repro.graph.asgraph import ASGraph
from repro.graph.csr import connected_components


def _validate_k(graph: ASGraph, k: int) -> None:
    if k < 1:
        raise AlgorithmError(f"k must be >= 1, got {k}")
    if k > graph.num_nodes:
        raise AlgorithmError(f"k={k} exceeds |V|={graph.num_nodes}")


def _dominating_components(graph: ASGraph, brokers: Sequence[int]) -> np.ndarray:
    """Component labels of the dominated graph ``B ⊙ A``."""
    adj = dominated_adjacency(graph, list(brokers))
    _, labels = connected_components(adj.to_scipy())
    return labels


@dataclass(frozen=True)
class PDSInstance:
    """Problem 1: Path-Dominating Set (decision version)."""

    graph: ASGraph
    k: int

    def __post_init__(self) -> None:
        _validate_k(self.graph, self.k)

    def is_feasible_solution(self, brokers: Sequence[int]) -> bool:
        """Does ``brokers`` give a dominating path between *all* pairs?

        Requires ``|B| <= k``, full coverage (every vertex in ``B ∪ N(B)``)
        and a single dominated-graph component spanning all vertices.
        """
        brokers = list(dict.fromkeys(int(b) for b in brokers))
        if len(brokers) > self.k or not brokers:
            return False
        mask = covered_mask(self.graph, brokers)
        if not mask.all():
            return False
        labels = _dominating_components(self.graph, brokers)
        return len(np.unique(labels)) == 1


@dataclass(frozen=True)
class MCBInstance:
    """Problem 3: Maximum Coverage with a broker set (no path constraint)."""

    graph: ASGraph
    k: int

    def __post_init__(self) -> None:
        _validate_k(self.graph, self.k)

    def objective(self, brokers: Sequence[int]) -> int:
        """``f(B) = |B ∪ N(B)|``."""
        return coverage_value(self.graph, list(brokers))

    def is_feasible_solution(self, brokers: Sequence[int]) -> bool:
        unique = set(int(b) for b in brokers)
        return 0 < len(unique) <= self.k


@dataclass(frozen=True)
class MCBGInstance:
    """Problem 2: Maximum Coverage with B-dominating path Guarantees."""

    graph: ASGraph
    k: int

    def __post_init__(self) -> None:
        _validate_k(self.graph, self.k)

    def objective(self, brokers: Sequence[int]) -> int:
        return coverage_value(self.graph, list(brokers))

    def is_feasible_solution(self, brokers: Sequence[int]) -> bool:
        """Size constraint + dominating-path guarantee among covered pairs.

        The guarantee is checked exactly: every covered pair that is
        connected in ``G`` must share a component of the dominated graph.
        Since non-isolated vertices of the dominated graph are exactly the
        covered vertices, this reduces to: all covered vertices belonging
        to one component of ``G`` lie in one dominated component.
        """
        brokers = list(dict.fromkeys(int(b) for b in brokers))
        if not 0 < len(brokers) <= self.k:
            return False
        mask = covered_mask(self.graph, brokers)
        covered = np.flatnonzero(mask)
        if len(covered) <= 1:
            return True
        dom_labels = _dominating_components(self.graph, brokers)
        _, full_labels = connected_components(self.graph.adj.to_scipy())
        for comp in np.unique(full_labels[covered]):
            members = covered[full_labels[covered] == comp]
            if len(np.unique(dom_labels[members])) > 1:
                return False
        return True


@dataclass(frozen=True)
class PathLengthConstrainedInstance:
    """Problem 4: MCBG with per-pair path-length parameters.

    ``epsilon`` is the tolerated deviation of the brokered path-length
    distribution from the free distribution (Eq. 4).  Evaluation lives in
    :func:`repro.core.pathlength.evaluate_feasibility`.
    """

    graph: ASGraph
    k: int
    epsilon: float = 0.05
    max_hops: int = 8

    def __post_init__(self) -> None:
        _validate_k(self.graph, self.k)
        if not 0.0 <= self.epsilon <= 1.0:
            raise AlgorithmError(f"epsilon must be in [0, 1], got {self.epsilon}")


def solve_pds_greedy(graph: ASGraph, k: int) -> list[int] | None:
    """Constructive PDS attempt: MaxSG until domination, within budget.

    Returns a certificate broker set or ``None`` when the heuristic cannot
    achieve full domination within ``k`` (the problem is NP-complete, so
    ``None`` does not prove infeasibility — Theorem 1 says the MCBG
    solution is then the best obtainable relaxation).
    """
    from repro.core.maxsg import maxsg

    _validate_k(graph, k)
    brokers = maxsg(graph, k)
    return brokers if PDSInstance(graph, k).is_feasible_solution(brokers) else None


def pairwise_dominating_guarantee_fraction(
    graph: ASGraph, brokers: Sequence[int]
) -> float:
    """Fraction of ordered vertex pairs with a B-dominating path.

    This is the exact "saturated connectivity" of the dominated graph —
    the quantity Theorem 1 says the MCBG solution maximizes.
    """
    n = graph.num_nodes
    if n < 2:
        return 0.0
    labels = _dominating_components(graph, list(brokers))
    # Isolated vertices of the dominated graph each form their own
    # component and contribute no pairs.
    sizes = np.bincount(labels).astype(np.float64)
    return float((sizes * (sizes - 1)).sum() / (n * (n - 1)))
