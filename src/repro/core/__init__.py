"""Core contribution: problems, selection algorithms, evaluation metrics."""

from repro.core.approx_mcbg import ApproxMCBGResult, approx_mcbg, repair_budget_split
from repro.core.baselines import (
    degree_based,
    ixp_based,
    pagerank_based,
    random_brokers,
    set_cover_dominating,
    tier1_only,
)
from repro.core.connectivity import (
    ConnectivityCurve,
    connectivity_at,
    connectivity_curve,
    marginal_connectivity_gain,
    path_inflation,
    saturated_connectivity,
)
from repro.core.coverage import (
    CoverageOracle,
    coverage_fraction,
    coverage_value,
    covered_mask,
)
from repro.core.domination import (
    brokers_mutually_connected,
    dominated_matrix,
    dominating_path_length,
    has_dominating_path,
    is_dominating_path,
    verify_mcbg_solution,
)
from repro.core.engine import DominationEngine
from repro.core.exact import exact_mcb, exact_mcbg, exact_pds
from repro.core.localsearch import LocalSearchResult, swap_local_search
from repro.core.registry import (
    AlgorithmSpec,
    ParamSpec,
    algorithm_names,
    all_specs,
    canonical_params,
    get_algorithm,
    register_algorithm,
    registry_fingerprint,
    run_algorithm,
)
from repro.core.robustness import (
    FailureSweepResult,
    failure_sweep,
    failure_sweep_reference,
    r_covered_fraction,
    redundant_greedy,
    single_failure_impact,
)
from repro.core.weighted import (
    WeightedCoverageOracle,
    traffic_weights,
    weighted_greedy,
    weighted_maxsg,
    weighted_saturated_connectivity,
)
from repro.core.greedy import (
    greedy_max_coverage,
    greedy_with_trace,
    lazy_greedy_max_coverage,
)
from repro.core.maxsg import maxsg, maxsg_until_dominated
from repro.core.pathlength import (
    FeasibilityReport,
    evaluate_feasibility,
    path_length_distribution,
)
from repro.core.problems import (
    MCBGInstance,
    MCBInstance,
    PathLengthConstrainedInstance,
    PDSInstance,
    pairwise_dominating_guarantee_fraction,
    solve_pds_greedy,
)
from repro.core.selector import (
    ALL_ALGORITHMS,
    BrokerSelector,
    SelectionResult,
)

__all__ = [
    # problems
    "PDSInstance",
    "MCBInstance",
    "MCBGInstance",
    "PathLengthConstrainedInstance",
    "solve_pds_greedy",
    "pairwise_dominating_guarantee_fraction",
    # coverage
    "CoverageOracle",
    "coverage_value",
    "coverage_fraction",
    "covered_mask",
    # algorithms
    "greedy_max_coverage",
    "lazy_greedy_max_coverage",
    "greedy_with_trace",
    "approx_mcbg",
    "ApproxMCBGResult",
    "repair_budget_split",
    "maxsg",
    "maxsg_until_dominated",
    # baselines
    "set_cover_dominating",
    "ixp_based",
    "tier1_only",
    "degree_based",
    "pagerank_based",
    "random_brokers",
    # domination / connectivity
    "is_dominating_path",
    "has_dominating_path",
    "dominating_path_length",
    "dominated_matrix",
    "brokers_mutually_connected",
    "verify_mcbg_solution",
    "ConnectivityCurve",
    "connectivity_curve",
    "connectivity_at",
    "saturated_connectivity",
    "path_inflation",
    "marginal_connectivity_gain",
    # path-length constraints
    "FeasibilityReport",
    "evaluate_feasibility",
    "path_length_distribution",
    # exact
    "exact_mcb",
    "exact_mcbg",
    "exact_pds",
    # engine
    "DominationEngine",
    # registry
    "AlgorithmSpec",
    "ParamSpec",
    "algorithm_names",
    "all_specs",
    "canonical_params",
    "get_algorithm",
    "register_algorithm",
    "registry_fingerprint",
    "run_algorithm",
    # selector
    "BrokerSelector",
    "SelectionResult",
    "ALL_ALGORITHMS",
    # extensions
    "swap_local_search",
    "LocalSearchResult",
    "failure_sweep",
    "failure_sweep_reference",
    "FailureSweepResult",
    "single_failure_impact",
    "redundant_greedy",
    "r_covered_fraction",
    "traffic_weights",
    "weighted_greedy",
    "weighted_maxsg",
    "weighted_saturated_connectivity",
    "WeightedCoverageOracle",
]
