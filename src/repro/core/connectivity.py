"""l-hop E2E connectivity — the paper's evaluation metric (Section 5.2).

For a broker set ``B`` the *l-hop E2E connectivity* is the fraction of all
ordered source/destination pairs ``(u, v)``, ``u != v``, joined by a
B-dominated path of at most ``l`` hops; the *saturated* connectivity is its
limit as ``l`` grows (i.e., plain reachability inside the dominated graph).
The free-path curve of the underlying topology (``B = V``) is obtained by
passing ``brokers=None``.

Exact computation is one BFS per vertex; the engine batches sources into
dense blocks so each hop level is a single ``sparse @ dense`` product, and
supports uniform source sampling with identical semantics for the larger
scales.  Saturated connectivity is always exact (connected components).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro.core.domination import dominated_matrix
from repro.exceptions import AlgorithmError
from repro.graph.asgraph import ASGraph
from repro.graph.bitset import bitset_hop_reach
from repro.graph.csr import batched_hop_reach, connected_components
from repro.obs import profiled
from repro.utils.rng import SeedLike, ensure_rng


@dataclass(frozen=True)
class ConnectivityCurve:
    """E2E connectivity as a function of the hop bound ``l``.

    ``fractions[l - 1]`` is the connectivity at hop bound ``l`` for
    ``l = 1..max_hops``; ``saturated`` is the exact large-``l`` limit.
    ``num_sources`` records the sample size (``n`` means exact).
    """

    fractions: np.ndarray
    saturated: float
    max_hops: int
    num_sources: int
    exact: bool

    def at(self, hops: int) -> float:
        """Connectivity at hop bound ``hops`` (clamped to the curve)."""
        if hops < 1:
            return 0.0
        idx = min(hops, self.max_hops) - 1
        return float(self.fractions[idx])

    def as_rows(self) -> list[tuple[int, float]]:
        """(l, connectivity) rows for table rendering."""
        rows = [(l + 1, float(f)) for l, f in enumerate(self.fractions)]
        rows.append((-1, self.saturated))  # -1 denotes "saturated"
        return rows


def _effective_matrix(
    graph: ASGraph, brokers: np.ndarray | list[int] | None
) -> sparse.csr_matrix:
    if brokers is None:
        return graph.adj.to_scipy()
    return dominated_matrix(graph, brokers)


@profiled("kernel.saturated_connectivity")
def saturated_connectivity(
    graph: ASGraph,
    brokers: np.ndarray | list[int] | None = None,
    *,
    matrix: sparse.csr_matrix | None = None,
) -> float:
    """Exact saturated E2E connectivity of the (dominated) graph.

    Computed from connected-component sizes: a fraction
    ``sum_C |C|(|C|-1) / (n(n-1))`` of ordered pairs are mutually
    reachable.  ``matrix`` short-circuits the dominated-graph build when
    the caller already has it.
    """
    n = graph.num_nodes
    if n < 2:
        return 0.0
    mat = matrix if matrix is not None else _effective_matrix(graph, brokers)
    _, labels = connected_components(mat)
    sizes = np.bincount(labels).astype(np.float64)
    return float((sizes * (sizes - 1)).sum() / (n * (n - 1)))


@profiled("kernel.connectivity_curve")
def connectivity_curve(
    graph: ASGraph,
    brokers: np.ndarray | list[int] | None = None,
    *,
    max_hops: int = 8,
    num_sources: int | None = None,
    seed: SeedLike = 0,
    batch_size: int = 256,
    backend: str | None = None,
) -> ConnectivityCurve:
    """Compute the l-hop E2E connectivity curve for ``brokers``.

    Parameters
    ----------
    brokers:
        Broker ids (or boolean mask); ``None`` evaluates the free topology
        (every edge usable), which is the "ASesWithIXPs" reference curve.
    max_hops:
        Largest hop bound evaluated exactly.
    num_sources:
        ``None`` = every vertex (exact).  Otherwise BFS sources are drawn
        uniformly without replacement and the pair fractions are unbiased
        estimates (each source contributes its exact reach counts).
    backend:
        Kernel backend (``repro.core.registry.resolve_backend``
        semantics).  ``"bitset"`` runs the BFS bit-parallel and counts
        per-hop totals directly; the integer sums — hence the returned
        fractions — are bit-identical to the python path.  Saturated
        connectivity always goes through the SciPy connected-components
        path (already C-speed), whatever the backend.
    """
    from repro.core.registry import resolve_backend

    n = graph.num_nodes
    if n < 2:
        raise AlgorithmError("connectivity requires at least two vertices")
    if max_hops < 1:
        raise AlgorithmError(f"max_hops must be >= 1, got {max_hops}")
    resolved = resolve_backend(backend)
    mat = _effective_matrix(graph, brokers)
    if num_sources is None or num_sources >= n:
        sources = np.arange(n)
        exact = True
    else:
        rng = ensure_rng(seed)
        sources = rng.choice(n, size=num_sources, replace=False)
        exact = False
    if resolved == "bitset":
        totals = bitset_hop_reach(
            mat, sources, max_hops, batch_size=max(batch_size, 512),
            aggregate=True,
        )
        per_level = totals / (len(sources) * (n - 1))
    else:
        counts = batched_hop_reach(mat, sources, max_hops, batch_size=batch_size)
        # counts[i, l-1] = vertices within l hops of sources[i], excluding it.
        per_level = counts.sum(axis=0) / (len(sources) * (n - 1))
    return ConnectivityCurve(
        fractions=per_level.astype(np.float64),
        saturated=saturated_connectivity(graph, brokers, matrix=mat),
        max_hops=max_hops,
        num_sources=len(sources),
        exact=exact,
    )


def connectivity_at(
    graph: ASGraph,
    brokers: np.ndarray | list[int] | None,
    hops: int,
    *,
    num_sources: int | None = None,
    seed: SeedLike = 0,
) -> float:
    """Convenience wrapper: connectivity at a single hop bound."""
    return connectivity_curve(
        graph, brokers, max_hops=hops, num_sources=num_sources, seed=seed
    ).at(hops)


def path_inflation(
    free_curve: ConnectivityCurve, broker_curve: ConnectivityCurve
) -> np.ndarray:
    """Per-hop connectivity loss of brokered routing vs free routing.

    ``inflation[l-1] = free(l) − brokered(l)``; values near zero mean the
    broker set adds (almost) no path inflation (Table 4's observation for
    the 3,540-alliance).
    """
    hops = min(free_curve.max_hops, broker_curve.max_hops)
    return free_curve.fractions[:hops] - broker_curve.fractions[:hops]


def marginal_connectivity_gain(
    graph: ASGraph,
    brokers: list[int],
    candidate: int,
) -> float:
    """Saturated-connectivity increase from adding ``candidate`` to ``B``.

    Fig. 3 correlates this quantity with PageRank scores to explain the
    PRB baseline's marginal effect.
    """
    base = saturated_connectivity(graph, brokers)
    extended = saturated_connectivity(graph, list(brokers) + [candidate])
    return extended - base
