"""Dataset registry: named scale profiles with on-disk caching.

Experiments and benchmarks request topologies by scale name so the whole
suite can be re-pointed at a different size with one flag.  The ``full``
profile matches the paper's 52,079-node dataset; smaller profiles shrink
every structural quantity proportionally (see
:meth:`repro.datasets.synthetic_internet.InternetConfig.scaled`).
"""

from __future__ import annotations

from pathlib import Path

from repro.datasets.synthetic_internet import (
    FULL_SCALE_AS_COUNT,
    InternetConfig,
    expand_internet_multigraph,
    generate_internet,
)
from repro.exceptions import DatasetError
from repro.graph.asgraph import ASGraph
from repro.graph.io import load_graph, save_graph
from repro.graph.multigraph import MultiGraph

#: Scale name -> fraction of the paper's full AS count.
_SCALE_FACTORS: dict[str, float] = {
    "tiny": 600 / FULL_SCALE_AS_COUNT,
    "small": 3_000 / FULL_SCALE_AS_COUNT,
    "medium": 12_000 / FULL_SCALE_AS_COUNT,
    "large": 26_000 / FULL_SCALE_AS_COUNT,
    "full": 1.0,
}


#: Seed offset separating the multigraph fabric expansion's RNG stream
#: from the base topology generator's, so callers who already hold the
#: cached base graph can reproduce :func:`load_multigraph_internet`
#: bit-for-bit via ``expand_internet_multigraph(graph, seed=seed + SALT)``.
MULTIGRAPH_SEED_SALT = 0x5EED


def available_scales() -> list[str]:
    """Names accepted by :func:`load_internet`, smallest first."""
    return list(_SCALE_FACTORS)


def config_for_scale(scale: str) -> InternetConfig:
    """The :class:`InternetConfig` behind a named scale profile."""
    try:
        factor = _SCALE_FACTORS[scale]
    except KeyError:
        raise DatasetError(
            f"unknown scale {scale!r}; choose from {sorted(_SCALE_FACTORS)}"
        ) from None
    return InternetConfig().scaled(factor)


def load_internet(
    scale: str = "small",
    *,
    seed: int = 0,
    cache_dir: str | Path | None = None,
) -> ASGraph:
    """Return the synthetic Internet for ``scale``, generating on demand.

    When ``cache_dir`` is given, generated topologies are stored as
    ``internet-<scale>-seed<seed>.json.gz`` and reloaded on later calls —
    useful because the ``large``/``full`` profiles take a while to build.
    """
    config = config_for_scale(scale)
    cache_path: Path | None = None
    if cache_dir is not None:
        cache_path = Path(cache_dir) / f"internet-{scale}-seed{seed}.json.gz"
        if cache_path.exists():
            return load_graph(cache_path)
    graph = generate_internet(config, seed=seed)
    if cache_path is not None:
        cache_path.parent.mkdir(parents=True, exist_ok=True)
        save_graph(graph, cache_path)
    return graph


def load_multigraph_internet(
    scale: str = "small",
    *,
    seed: int = 0,
    cache_dir: str | Path | None = None,
) -> MultiGraph:
    """The inter-IXP multigraph for ``scale``: :func:`load_internet` plus
    seeded parallel IXP-fabric expansion.

    The simple base topology goes through the normal on-disk cache; the
    multigraph lift is recomputed (it is a fast vectorized pass) with a
    seed derived from ``seed``, so repeat calls are bit-identical.
    """
    graph = load_internet(scale, seed=seed, cache_dir=cache_dir)
    return expand_internet_multigraph(graph, seed=seed + MULTIGRAPH_SEED_SALT)
