"""Dataset summaries reproducing Table 2's structure report.

``summarize`` computes, for any :class:`ASGraph`, the row set of the
paper's Table 2 (node/edge counts split by kind, largest-component size)
plus the structural diagnostics used to validate the synthetic generator
(IXP attachment fraction, average degree, (alpha, beta) estimate).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.asgraph import ASGraph
from repro.graph.metrics import average_degree, component_sizes
from repro.graph.paths import estimate_alpha_beta
from repro.types import NodeKind, Relationship
from repro.utils.rng import SeedLike
from repro.utils.tables import format_table


@dataclass(frozen=True)
class DatasetSummary:
    """Table 2 quantities plus generator-validation diagnostics."""

    num_ixps: int
    num_ases: int
    largest_component_size: int
    as_as_edges: int
    ixp_as_edges: int
    ixp_attached_fraction: float
    average_degree: float
    alpha: float | None = None
    beta: int | None = None

    def as_table(self) -> str:
        """Render in the shape of the paper's Table 2."""
        rows: list[tuple[str, object]] = [
            ("IXPs", self.num_ixps),
            ("ASes", self.num_ases),
            ("Size of the maximum connected subgraph", self.largest_component_size),
            ("# of connections among ASes", self.as_as_edges),
            ("# of connections between IXPs and ASes", self.ixp_as_edges),
            ("Fraction of ASes attached to an IXP", f"{self.ixp_attached_fraction:.3f}"),
            ("Average degree", f"{self.average_degree:.2f}"),
        ]
        if self.alpha is not None and self.beta is not None:
            rows.append(("(alpha, beta)", f"({self.alpha:.3f}, {self.beta})"))
        return format_table(
            ["Description", "Numbers"], rows, title="Table 2: dataset summary"
        )


def summarize(
    graph: ASGraph,
    *,
    estimate_short_paths: bool = False,
    alpha_target: float = 0.99,
    seed: SeedLike = 0,
) -> DatasetSummary:
    """Compute a :class:`DatasetSummary` for ``graph``.

    ``estimate_short_paths`` additionally runs the sampled (alpha, beta)
    estimation, which costs a few hundred BFS traversals.
    """
    ixp_mask = graph.ixp_mask()
    src_is_ixp = ixp_mask[graph.edge_src]
    dst_is_ixp = ixp_mask[graph.edge_dst]
    as_as = int(np.count_nonzero(~src_is_ixp & ~dst_is_ixp))
    ixp_as = int(np.count_nonzero(src_is_ixp ^ dst_is_ixp))

    # An AS is "attached" when it has >= 1 membership edge.
    membership = graph.edge_rels == int(Relationship.IXP_MEMBERSHIP)
    attached_ases = set()
    for u, v in zip(graph.edge_src[membership], graph.edge_dst[membership]):
        if graph.kinds[u] != int(NodeKind.IXP):
            attached_ases.add(int(u))
        if graph.kinds[v] != int(NodeKind.IXP):
            attached_ases.add(int(v))
    num_as = graph.num_ases
    attached_fraction = len(attached_ases) / num_as if num_as else 0.0

    alpha = beta = None
    if estimate_short_paths:
        # Measured on the maximum connected subgraph, as in the paper: the
        # satellite fringe (Table 2's LCC < |V|) caps whole-graph
        # reachability just below any alpha close to 1.
        lcc, _ = graph.largest_connected_component()
        alpha, beta = estimate_alpha_beta(lcc, alpha=alpha_target, seed=seed)

    sizes = component_sizes(graph)
    return DatasetSummary(
        num_ixps=graph.num_ixps,
        num_ases=num_as,
        largest_component_size=int(sizes[0]) if len(sizes) else 0,
        as_as_edges=as_as,
        ixp_as_edges=ixp_as,
        ixp_attached_fraction=attached_fraction,
        average_degree=average_degree(graph),
        alpha=alpha,
        beta=beta,
    )
