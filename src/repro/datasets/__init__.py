"""Dataset substrate: calibrated synthetic Internet + registry + summaries."""

from repro.datasets.loader import (
    available_scales,
    load_internet,
    load_multigraph_internet,
)
from repro.datasets.stats import DatasetSummary, summarize
from repro.datasets.synthetic_internet import (
    FULL_SCALE_AS_COUNT,
    FULL_SCALE_IXP_COUNT,
    InternetConfig,
    expand_internet_multigraph,
    generate_internet,
    generate_multigraph_internet,
)

__all__ = [
    "InternetConfig",
    "generate_internet",
    "generate_multigraph_internet",
    "expand_internet_multigraph",
    "FULL_SCALE_AS_COUNT",
    "FULL_SCALE_IXP_COUNT",
    "load_internet",
    "load_multigraph_internet",
    "available_scales",
    "DatasetSummary",
    "summarize",
]
