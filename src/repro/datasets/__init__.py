"""Dataset substrate: calibrated synthetic Internet + registry + summaries."""

from repro.datasets.loader import available_scales, load_internet
from repro.datasets.stats import DatasetSummary, summarize
from repro.datasets.synthetic_internet import (
    FULL_SCALE_AS_COUNT,
    FULL_SCALE_IXP_COUNT,
    InternetConfig,
    generate_internet,
)

__all__ = [
    "InternetConfig",
    "generate_internet",
    "FULL_SCALE_AS_COUNT",
    "FULL_SCALE_IXP_COUNT",
    "load_internet",
    "available_scales",
    "DatasetSummary",
    "summarize",
]
