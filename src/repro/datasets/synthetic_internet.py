"""Calibrated synthetic AS-level Internet topology (the data substitution).

The paper evaluates on a 2014 measurement dataset (Table 2): 51,757 ASes,
322 IXPs, 347,332 AS-AS connections, 55,282 IXP membership links, largest
connected component of 51,895 nodes, 40.2 % of ASes attached to at least
one IXP, and the (0.99, 4)-graph short-path property.  That dataset cannot
be downloaded in this offline environment, so this module builds the
closest synthetic equivalent:

* a **tiered customer/provider hierarchy** — a tier-1 clique, a transit
  middle layer, and a stub majority, with provider choice following
  preferential attachment (yielding the scale-free, disassortative
  structure of Fig. 1);
* a **peering mesh** concentrated on transit and IXP-attached ASes, sized
  so the AS-AS edge count matches the paper's average degree;
* **IXPs as independent entities** with a heavy-tailed membership-size
  distribution calibrated to 55,282 memberships over 40.2 % of ASes;
* a small number of **satellite clusters** detached from the core so the
  largest connected component is slightly smaller than the full vertex
  set, as in Table 2.

Every quantity scales linearly with the requested AS count, so the same
generator drives the laptop-sized test profiles and the full 52,079-node
reproduction.  Structural targets (edge counts, membership fraction,
(alpha, beta)) are validated by ``tests/datasets``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.exceptions import DatasetError
from repro.graph.asgraph import ASGraph, EdgeAttributes
from repro.graph.multigraph import MultiGraph, synthesize_edge_attributes
from repro.types import BusinessCategory, LinkKind, NodeKind, Relationship, Tier
from repro.utils.rng import SeedLike, ensure_rng

#: Table 2 headline counts for the full-scale 2014 topology.
FULL_SCALE_AS_COUNT = 51_757
FULL_SCALE_IXP_COUNT = 322
FULL_SCALE_AS_AS_EDGES = 347_332
FULL_SCALE_IXP_MEMBERSHIPS = 55_282
#: Fraction of ASes directly connected to at least one IXP (Section 6.1).
IXP_ATTACHED_FRACTION = 0.402


@dataclass(frozen=True)
class InternetConfig:
    """Structural parameters of the synthetic Internet.

    The defaults reproduce the full-scale Table 2 dataset; use
    :meth:`scaled` for smaller, proportional instances.
    """

    num_ases: int = FULL_SCALE_AS_COUNT
    num_ixps: int = FULL_SCALE_IXP_COUNT
    #: Tier-1 backbone providers forming a full peering clique.
    num_tier1: int = 15
    #: Fraction of (non-tier-1) ASes that sell transit to others.
    transit_fraction: float = 0.08
    #: Mean number of upstream providers bought by a transit AS / stub AS.
    transit_provider_mean: float = 2.2
    stub_provider_mean: float = 1.65
    #: Total AS-AS undirected edge target (c2p + p2p combined).
    as_as_edge_target: int = FULL_SCALE_AS_AS_EDGES
    #: Total IXP membership edge target.
    ixp_membership_target: int = FULL_SCALE_IXP_MEMBERSHIPS
    #: Fraction of ASes attached to >= 1 IXP.
    ixp_attached_fraction: float = IXP_ATTACHED_FRACTION
    #: Fraction of ASes whose *only* connectivity is IXP peering (content
    #: caches, CDN PoPs and route-server-only peers that the BGP+IXP
    #: measurement sees exclusively at exchanges).  These make the big
    #: IXPs genuinely complementary brokers, as in Table 5.
    ixp_centric_fraction: float = 0.03
    #: Super-linear preferential-attachment exponent: provider and peering
    #: choice weight is ``(degree + 1) ** preferential_exponent``.  Values
    #: above 1 concentrate adjacency on a few hyper-hubs, matching the real
    #: AS graph where the top ~0.2 % of nodes cover ~73 % of all vertices
    #: (calibrated against the paper's Table 1 coverage ladder).
    preferential_exponent: float = 1.5
    #: Cap on any single node's attachment weight, as a fraction of |V|:
    #: super-linear preferential attachment gels into one mega-hub on large
    #: instances without it.  0.16 mirrors the real AS graph, whose largest
    #: observable adjacency (a hypergiant transit AS) is ~10-16 % of |V|.
    max_degree_fraction: float = 0.16
    #: Fraction of ASes placed in satellite clusters outside the core
    #: component (Table 2: LCC = 51,895 of 52,079 nodes => ~0.35 %).
    satellite_fraction: float = 0.0035
    #: Business-category mix for stub ASes (content, enterprise; the rest
    #: are transit/access networks).
    content_fraction: float = 0.08
    enterprise_fraction: float = 0.17

    def scaled(self, factor: float) -> "InternetConfig":
        """Proportionally shrink (or grow) every absolute count."""
        if factor <= 0:
            raise DatasetError(f"scale factor must be positive, got {factor}")
        return replace(
            self,
            num_ases=max(int(round(self.num_ases * factor)), 50),
            num_ixps=max(int(round(self.num_ixps * factor)), 3),
            num_tier1=max(int(round(self.num_tier1 * max(factor, 0.25))), 4),
            as_as_edge_target=max(int(round(self.as_as_edge_target * factor)), 100),
            ixp_membership_target=max(
                int(round(self.ixp_membership_target * factor)), 20
            ),
        )

    def validate(self) -> None:
        """Raise :class:`DatasetError` on inconsistent parameters."""
        if self.num_ases < 20:
            raise DatasetError("num_ases must be >= 20")
        if self.num_ixps < 1:
            raise DatasetError("num_ixps must be >= 1")
        if self.num_tier1 < 2 or self.num_tier1 > self.num_ases // 4:
            raise DatasetError("num_tier1 out of range")
        if not 0.5 <= self.preferential_exponent <= 2.0:
            raise DatasetError("preferential_exponent must be in [0.5, 2]")
        if not 0.01 <= self.max_degree_fraction <= 1.0:
            raise DatasetError("max_degree_fraction must be in [0.01, 1]")
        for name in ("transit_fraction", "ixp_attached_fraction",
                     "ixp_centric_fraction", "satellite_fraction",
                     "content_fraction", "enterprise_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise DatasetError(f"{name} must be in [0, 1], got {value}")
        if self.content_fraction + self.enterprise_fraction > 1.0:
            raise DatasetError("content + enterprise fractions exceed 1")


@dataclass
class _Builder:
    """Mutable scratch state while assembling the topology."""

    num_nodes: int
    edges: list[tuple[int, int]] = field(default_factory=list)
    rels: list[int] = field(default_factory=list)
    seen: set[tuple[int, int]] = field(default_factory=set)
    degree: np.ndarray | None = None

    def __post_init__(self) -> None:
        self.degree = np.zeros(self.num_nodes, dtype=np.int64)

    def add(self, u: int, v: int, rel: Relationship) -> bool:
        """Add undirected edge (u customer-first for c2p); reject dupes."""
        if u == v:
            return False
        key = (u, v) if u < v else (v, u)
        if key in self.seen:
            return False
        self.seen.add(key)
        self.edges.append((u, v))
        self.rels.append(int(rel))
        self.degree[u] += 1
        self.degree[v] += 1
        return True


def _provider_counts(rng: np.random.Generator, n: int, mean: float) -> np.ndarray:
    """1 + Poisson(mean - 1) provider multiplicities (multihoming)."""
    return 1 + rng.poisson(max(mean - 1.0, 0.0), size=n)


def _capped_weights(
    degrees: np.ndarray, exponent: float, degree_cap: float
) -> np.ndarray:
    """Normalized weights ∝ (degree + 1)^exponent, zero once "full".

    Nodes whose degree reached ``degree_cap`` stop accepting new
    attachments, bounding the largest hub at roughly the cap; without
    this, super-linear preferential attachment gels into a single
    mega-hub on large instances.  Falls back to uniform when every
    candidate is full.
    """
    deg = degrees.astype(np.float64)
    w = (deg + 1.0) ** exponent
    w[deg >= degree_cap] = 0.0
    total = w.sum()
    if total <= 0.0:
        return np.full(len(w), 1.0 / len(w))
    return w / total


def _preferential_pick(
    rng: np.random.Generator,
    candidates: np.ndarray,
    degrees: np.ndarray,
    count: int,
    exponent: float,
    degree_cap: float,
) -> np.ndarray:
    """Sample ``count`` distinct candidates, capped-preferentially."""
    count = min(count, len(candidates))
    w = _capped_weights(degrees, exponent, degree_cap)
    return rng.choice(candidates, size=count, replace=False, p=w)


def generate_internet(
    config: InternetConfig | None = None, *, seed: SeedLike = 0
) -> ASGraph:
    """Generate the synthetic AS/IXP topology described in the module docs.

    Node layout: ids ``[0, num_ases)`` are ASes (tier-1 first, then transit,
    then stubs, then satellites); ids ``[num_ases, num_ases + num_ixps)``
    are IXPs.
    """
    config = config or InternetConfig()
    config.validate()
    rng = ensure_rng(seed)

    n_as, n_ixp = config.num_ases, config.num_ixps
    n = n_as + n_ixp
    builder = _Builder(n)

    num_satellite = int(round(config.satellite_fraction * n_as))
    core_as = n_as - num_satellite
    n_t1 = config.num_tier1
    n_transit = max(int(round(config.transit_fraction * (core_as - n_t1))), 1)
    n_stub = core_as - n_t1 - n_transit
    if n_stub <= 0:
        raise DatasetError("configuration leaves no stub ASes")

    tiers = np.full(n, int(Tier.NONE), dtype=np.uint8)
    kinds = np.full(n, int(NodeKind.AS), dtype=np.uint8)
    kinds[n_as:] = int(NodeKind.IXP)
    degree_cap = config.max_degree_fraction * n
    tiers[:n_t1] = int(Tier.TIER1)
    tiers[n_t1 : n_t1 + n_transit] = int(Tier.TRANSIT)
    tiers[n_t1 + n_transit : n_as] = int(Tier.STUB)

    # ------------------------------------------------------------------
    # 1. Tier-1 clique (settlement-free peering backbone).
    # ------------------------------------------------------------------
    for u in range(n_t1):
        for v in range(u + 1, n_t1):
            builder.add(u, v, Relationship.PEER_TO_PEER)

    # ------------------------------------------------------------------
    # 2. Transit layer: preferential provider choice among tier-1 +
    #    already-placed transit ASes.
    # ------------------------------------------------------------------
    transit_ids = np.arange(n_t1, n_t1 + n_transit)
    provider_counts = _provider_counts(rng, n_transit, config.transit_provider_mean)
    for idx, v in enumerate(transit_ids):
        pool = np.arange(0, v)  # all earlier core ASes can sell transit
        providers = _preferential_pick(
            rng, pool, builder.degree[pool], int(provider_counts[idx]),
            config.preferential_exponent, degree_cap,
        )
        for p in providers:
            builder.add(int(v), int(p), Relationship.CUSTOMER_TO_PROVIDER)

    # ------------------------------------------------------------------
    # 3. Stub layer: providers drawn from the *transit* layer,
    #    preferential.  Stubs buy from regional/national ISPs rather than
    #    directly from tier-1 backbones (whose customers are other
    #    carriers) — this keeps the Tier1Only baseline realistically weak
    #    (Fig. 2b) while the biggest access hubs live in the transit tier.
    # ------------------------------------------------------------------
    stub_ids = np.arange(n_t1 + n_transit, core_as)
    upstream_pool = np.arange(n_t1, n_t1 + n_transit)
    # IXP-centric ASes skip transit entirely; they are wired in step 4.
    num_centric = min(int(round(config.ixp_centric_fraction * core_as)), len(stub_ids))
    centric_ids = (
        rng.choice(stub_ids, size=num_centric, replace=False)
        if num_centric
        else np.array([], dtype=np.int64)
    )
    centric_mask = np.zeros(n, dtype=bool)
    centric_mask[centric_ids] = True
    stub_counts = _provider_counts(rng, len(stub_ids), config.stub_provider_mean)
    # Degree-proportional sampling via an endpoint pool, refreshed in
    # blocks: exact per-step preferential attachment is O(n^2); block
    # refresh keeps the heavy-tail while staying linear.
    block = 512
    # Track how strong each stub's best provider is: ASes behind small
    # regional providers are the ones that buy IXP connectivity to offload
    # transit (step 4 uses this to bias membership).
    provider_hub_degree = np.zeros(n, dtype=np.float64)
    for start in range(0, len(stub_ids), block):
        chunk = stub_ids[start : start + block]
        weights = _capped_weights(
            builder.degree[upstream_pool], config.preferential_exponent, degree_cap
        )
        for offset, v in enumerate(chunk):
            if centric_mask[v]:
                continue
            cnt = int(stub_counts[start + offset])
            providers = rng.choice(
                upstream_pool, size=min(cnt, len(upstream_pool)), replace=False, p=weights
            )
            for p in providers:
                builder.add(int(v), int(p), Relationship.CUSTOMER_TO_PROVIDER)
            provider_hub_degree[v] = builder.degree[providers].max(initial=0.0)

    # ------------------------------------------------------------------
    # 4. IXPs: heavy-tailed membership sizes, preferential member choice.
    # ------------------------------------------------------------------
    ixp_ids = np.arange(n_as, n)
    attached_target = int(round(config.ixp_attached_fraction * core_as))
    attachable = np.concatenate([transit_ids, stub_ids, np.arange(n_t1)])
    # IXP membership in the wild is only loosely correlated with the
    # transit hierarchy, and is *over*-represented among ASes with weak
    # upstream providers — exchanging traffic at an IXP substitutes for
    # transit they would otherwise have to buy.  The blend below (degree-
    # preferential + uniform + inverse-provider-strength) reproduces that,
    # and it is exactly what makes IXPs complementary, highly-ranked
    # brokers (Table 5): their member sets reach edge networks the big
    # transit hubs do not cover.
    pref = builder.degree[attachable].astype(np.float64) + 1.0
    pref /= pref.sum()
    weak_provider = 1.0 / (1.0 + provider_hub_degree[attachable])
    weak_provider /= weak_provider.sum()
    attach_weights = 0.35 * pref + 0.25 / len(attachable) + 0.4 * weak_provider
    attach_weights /= attach_weights.sum()
    regular_target = max(attached_target - len(centric_ids), 0)
    non_centric = attachable[~centric_mask[attachable]]
    w = attach_weights[~centric_mask[attachable]]
    w = w / w.sum()
    regular = rng.choice(
        non_centric,
        size=min(regular_target, len(non_centric)),
        replace=False,
        p=w,
    )
    attached = np.concatenate([regular, centric_ids])
    # IXP sizes follow a Zipf-like profile normalized to the membership
    # budget: a few continental exchanges host hundreds of members.
    raw_sizes = 1.0 / np.arange(1, n_ixp + 1) ** 0.78
    size_weights = raw_sizes / raw_sizes.sum()
    # First pass: every attached AS joins one "home" IXP so the attachment
    # fraction is met exactly; home choice follows the IXP size profile.
    homes = rng.choice(ixp_ids, size=len(attached), p=size_weights)
    for m, ixp in zip(attached, homes):
        builder.add(int(m), int(ixp), Relationship.IXP_MEMBERSHIP)
    # IXP-centric ASes multi-home across the big exchanges (their whole
    # connectivity lives there).
    for m in centric_ids:
        extra = rng.choice(ixp_ids, size=min(2, n_ixp), replace=False, p=size_weights)
        for ixp in extra:
            builder.add(int(m), int(ixp), Relationship.IXP_MEMBERSHIP)
    # Second pass: spend the remaining membership budget on multi-homing;
    # high-degree ASes (large transit networks, CDNs) join many IXPs.
    remaining = max(config.ixp_membership_target - len(attached), 0)
    if remaining and len(attached):
        as_weights = builder.degree[attached].astype(np.float64) + 1.0
        as_weights /= as_weights.sum()
        extra_as = rng.choice(attached, size=remaining * 2, p=as_weights)
        extra_ixp = rng.choice(ixp_ids, size=remaining * 2, p=size_weights)
        added_members = 0
        for m, ixp in zip(extra_as, extra_ixp):
            if builder.add(int(m), int(ixp), Relationship.IXP_MEMBERSHIP):
                added_members += 1
                if added_members >= remaining:
                    break

    # ------------------------------------------------------------------
    # 5. Peering mesh: spend the remaining AS-AS edge budget on p2p links,
    #    degree-preferential and biased towards IXP-attached ASes.
    # ------------------------------------------------------------------
    current_as_edges = sum(
        1 for (u, v) in builder.edges if u < n_as and v < n_as
    )
    peering_budget = max(config.as_as_edge_target - current_as_edges, 0)
    peer_pool = np.concatenate([np.arange(n_t1 + n_transit), attached])
    peer_pool = np.unique(peer_pool)
    # IXP-centric ASes exchange traffic only across their exchanges; they
    # take no part in the bilateral peering mesh.
    peer_pool = peer_pool[~centric_mask[peer_pool]]
    added = 0
    attempts = 0
    max_attempts = peering_budget * 20 + 1000
    while added < peering_budget and attempts < max_attempts:
        need = peering_budget - added
        weights = _capped_weights(
            builder.degree[peer_pool], config.preferential_exponent, degree_cap
        )
        us = rng.choice(peer_pool, size=need, replace=True, p=weights)
        vs = rng.choice(peer_pool, size=need, replace=True, p=weights)
        for u, v in zip(us, vs):
            attempts += 1
            if builder.add(int(u), int(v), Relationship.PEER_TO_PEER):
                added += 1
            if added >= peering_budget:
                break

    # ------------------------------------------------------------------
    # 6. Satellite clusters: small components detached from the core.
    # ------------------------------------------------------------------
    satellite_ids = np.arange(core_as, n_as)
    tiers[satellite_ids] = int(Tier.STUB)
    i = 0
    while i < len(satellite_ids):
        size = int(rng.integers(1, 4))
        cluster = satellite_ids[i : i + size]
        for a in range(len(cluster) - 1):
            builder.add(
                int(cluster[a]), int(cluster[a + 1]), Relationship.CUSTOMER_TO_PROVIDER
            )
        i += size

    # ------------------------------------------------------------------
    # 7. Business categories (Table 5 composition analysis).
    # ------------------------------------------------------------------
    categories = np.full(n, int(BusinessCategory.TRANSIT_ACCESS), dtype=np.uint8)
    categories[n_as:] = int(BusinessCategory.IXP)
    stub_and_sat = np.concatenate([stub_ids, satellite_ids])
    draws = rng.random(len(stub_and_sat))
    categories[stub_and_sat[draws < config.content_fraction]] = int(
        BusinessCategory.CONTENT
    )
    categories[
        stub_and_sat[
            (draws >= config.content_fraction)
            & (draws < config.content_fraction + config.enterprise_fraction)
        ]
    ] = int(BusinessCategory.ENTERPRISE)

    names = [f"AS{65000 + i}" for i in range(n_as)] + [
        f"IXP-{i:03d}" for i in range(n_ixp)
    ]
    return ASGraph.from_edges(
        n,
        np.asarray(builder.edges, dtype=np.int64),
        kinds=kinds,
        tiers=tiers,
        categories=categories,
        relationships=np.asarray(builder.rels, dtype=np.uint8),
        names=names,
    )

def expand_internet_multigraph(
    graph: ASGraph,
    *,
    seed: SeedLike = 0,
    fabric_duplication: float = 0.25,
    max_extra_ports: int = 3,
) -> "MultiGraph":
    """Lift a synthetic Internet to its inter-IXP **multigraph**.

    The measurement papers behind this refactor observe that the IXP
    substrate is a multigraph: a large member provisions several parallel
    ports (or an aggregated LAG bundle) into the same fabric, each with
    its own capacity.  This pass annotates every edge of ``graph`` with
    seeded capacity/latency/kind attributes and then adds parallel
    instances to IXP-membership edges — the probability of extra ports
    grows with the member AS's degree (big carriers and CDNs buy more
    fabric capacity), and the extra instances are ``IXP_LAG`` bundles
    with independently drawn, upward-biased capacity.

    Everything is drawn from one generator seeded by ``seed``, so the
    expansion is bit-reproducible, and the base instances stay in edge-
    list order so ``simplify()`` reproduces ``graph``'s topology exactly.
    """
    if not 0.0 <= fabric_duplication <= 1.0:
        raise DatasetError(
            f"fabric_duplication must be in [0,1], got {fabric_duplication}"
        )
    if max_extra_ports < 1:
        raise DatasetError(f"max_extra_ports must be >= 1, got {max_extra_ports}")
    rng = ensure_rng(seed)
    attrs = graph.edge_attrs
    if attrs is None:
        attrs = synthesize_edge_attributes(graph, seed=rng)

    member = graph.edge_rels == int(Relationship.IXP_MEMBERSHIP)
    member_ids = np.flatnonzero(member)
    degrees = graph.degrees()
    # The AS endpoint of a membership edge (orientation is AS -> IXP in the
    # builder, but be robust to either).
    src_is_ixp = graph.kinds[graph.edge_src[member_ids]] == int(NodeKind.IXP)
    as_end = np.where(
        src_is_ixp, graph.edge_dst[member_ids], graph.edge_src[member_ids]
    )
    # Degree-weighted duplication probability, capped at 4x the base rate.
    deg = degrees[as_end].astype(np.float64)
    weight = np.minimum(1.0 + deg / max(float(np.median(deg)) if len(deg) else 1.0, 1.0), 4.0)
    p = np.minimum(fabric_duplication * weight, 1.0)
    extra = np.where(
        rng.random(len(member_ids)) < p,
        rng.integers(1, max_extra_ports + 1, size=len(member_ids)),
        0,
    ).astype(np.int64)
    dup_of = np.repeat(member_ids, extra)

    src = np.concatenate([graph.edge_src, graph.edge_src[dup_of]])
    dst = np.concatenate([graph.edge_dst, graph.edge_dst[dup_of]])
    rels = np.concatenate([graph.edge_rels, graph.edge_rels[dup_of]])
    # LAG bundles: base-attr draw, capacity biased up 1-4x (aggregated ports).
    dup_attrs = synthesize_edge_attributes(
        graph,
        seed=rng,
        src=graph.edge_src[dup_of],
        dst=graph.edge_dst[dup_of],
        rels=graph.edge_rels[dup_of],
    )
    boost = 1.0 + 3.0 * rng.random(len(dup_of))
    all_attrs = EdgeAttributes(
        capacity_gbps=np.concatenate(
            [attrs.capacity_gbps, dup_attrs.capacity_gbps * boost]
        ),
        latency_ms=np.concatenate([attrs.latency_ms, dup_attrs.latency_ms]),
        link_kind=np.concatenate(
            [
                attrs.link_kind,
                np.full(len(dup_of), int(LinkKind.IXP_LAG), dtype=np.uint8),
            ]
        ),
    )
    return MultiGraph.from_arrays(
        graph.num_nodes,
        src,
        dst,
        attrs=all_attrs,
        relationships=rels,
        kinds=graph.kinds,
        tiers=graph.tiers,
        categories=graph.categories,
        names=graph.names if graph.names else None,
    )


def generate_multigraph_internet(
    config: InternetConfig | None = None,
    *,
    seed: SeedLike = 0,
    fabric_duplication: float = 0.25,
    max_extra_ports: int = 3,
) -> "MultiGraph":
    """Generate the synthetic Internet and lift it to the IXP multigraph.

    Equivalent to :func:`generate_internet` followed by
    :func:`expand_internet_multigraph` with one shared seed.
    """
    rng = ensure_rng(seed)
    graph = generate_internet(config, seed=rng)
    return expand_internet_multigraph(
        graph,
        seed=rng,
        fabric_duplication=fabric_duplication,
        max_extra_ports=max_extra_ports,
    )
