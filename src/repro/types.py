"""Shared vocabulary types for the AS-level Internet model.

The paper's evaluation distinguishes node *kinds* (AS vs IXP), AS *tiers*
(tier-1 transit providers down to stub networks), business *categories*
(Table 5 splits brokers into Transit/Access, Content, Enterprise and IXP),
and inter-AS business *relationships* (customer-to-provider and
peer-to-peer, per the Gao-Rexford model).  These enums are used throughout
the graph substrate, the selection algorithms, and the experiment harness.
"""

from __future__ import annotations

import enum

#: Internal node identifier.  All graph code uses dense integer ids in
#: ``[0, n)``; external names (AS numbers, IXP names) are metadata.
NodeId = int


class NodeKind(enum.IntEnum):
    """Whether a topology node is an autonomous system or an IXP.

    Following the paper (Section 3) IXPs are modelled as *independent
    entities*, i.e., first-class vertices of the topology rather than
    invisible switching fabric.
    """

    AS = 0
    IXP = 1


class Tier(enum.IntEnum):
    """Coarse AS hierarchy level.

    ``TIER1`` ASes form the transit-free clique at the top of the customer/
    provider hierarchy; ``TRANSIT`` ASes have both customers and providers;
    ``STUB`` ASes only buy transit.  IXPs carry ``NONE``.
    """

    NONE = 0
    TIER1 = 1
    TRANSIT = 2
    STUB = 3


class BusinessCategory(enum.IntEnum):
    """Service category used by Table 5's broker composition breakdown.

    Mirrors the categorization of CAIDA's AS-classification (transit/access,
    content, enterprise) plus the IXP class.
    """

    IXP = 0
    TRANSIT_ACCESS = 1
    CONTENT = 2
    ENTERPRISE = 3


class Relationship(enum.IntEnum):
    """Business relationship attached to an undirected edge ``(u, v)``.

    The value is interpreted relative to the stored edge orientation:
    ``CUSTOMER_TO_PROVIDER`` means ``u`` is the customer and ``v`` the
    provider.  ``PEER_TO_PEER`` is symmetric.  ``IXP_MEMBERSHIP`` marks an
    AS-to-IXP membership link (treated as settlement-free and symmetric).
    """

    PEER_TO_PEER = 0
    CUSTOMER_TO_PROVIDER = 1
    IXP_MEMBERSHIP = 2


class LinkKind(enum.IntEnum):
    """Physical flavour of one edge *instance* in the inter-IXP multigraph.

    The real substrate is a multigraph: two networks meeting at several
    exchanges (or over both a transit contract and a public fabric) have
    several parallel links with very different capacity/latency.  Each
    parallel edge instance carries one of these kinds:

    * ``TRANSIT_CIRCUIT`` — a provisioned long-haul transit circuit
      backing a customer/provider contract;
    * ``PRIVATE_PEERING`` — a bilateral private network interconnect;
    * ``IXP_PORT`` — a single access port into an IXP switching fabric;
    * ``IXP_LAG`` — an aggregated multi-port bundle at an IXP (the
      high-capacity parallel instances big members provision).
    """

    TRANSIT_CIRCUIT = 0
    PRIVATE_PEERING = 1
    IXP_PORT = 2
    IXP_LAG = 3


class RoutingDirectionality(enum.Enum):
    """How business relationships constrain edge traversal (Section 6.2).

    * ``BIDIRECTIONAL`` — the idealized policy assumed by the selection
      algorithms: every edge can carry brokered traffic both ways.
    * ``DIRECTIONAL`` — edges are only traversable in the paying direction
      (customer towards provider); peering and IXP membership links remain
      symmetric.  This models "forcing ASes/IXPs to obey existing business
      relationships" (Fig. 5c).
    """

    BIDIRECTIONAL = "bidirectional"
    DIRECTIONAL = "directional"
