"""Exception hierarchy for the broker-set reproduction library.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still being able to discriminate finer failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class GraphValidationError(ReproError):
    """A graph (or graph fragment) failed structural validation.

    Raised, e.g., for edge endpoints out of range, self-loops where they are
    forbidden, or mismatched metadata array lengths.
    """


class DatasetError(ReproError):
    """A dataset could not be generated, parsed, or located."""


class AlgorithmError(ReproError):
    """An algorithm received inputs it cannot handle.

    Examples: a budget ``k`` larger than ``|V|``, an empty candidate pool,
    or an (alpha, beta) parameterization outside its documented domain.
    """


class InfeasibleProblemError(AlgorithmError):
    """A problem instance admits no feasible solution.

    Used by the PDS decision solver and by constraint verifiers when a
    requested guarantee (e.g., a dominating path between two vertices)
    cannot be met by any broker set of the given size.
    """


class ConvergenceError(ReproError):
    """An iterative numeric procedure failed to converge.

    Raised by the economic solvers (Stackelberg / bargaining) when the
    underlying optimization does not reach the requested tolerance.
    """


class ResilienceError(ReproError):
    """The resilience machinery hit an inconsistent or malformed state.

    Raised with structured context instead of a bare assertion: a
    malformed :class:`~repro.resilience.faults.FaultEvent` (e.g. a
    broker event without a node), or — when a replay is run with
    ``verify_every`` — incremental engine state diverging from the
    from-scratch recomputation.  ``step`` is the schedule step at which
    the problem surfaced (``None`` outside a replay) and ``details``
    carries the engine's drift diagnosis verbatim.
    """

    def __init__(self, message: str, *, step: int | None = None,
                 details: str = "") -> None:
        self.step = step
        self.details = details
        parts = [message]
        if step is not None:
            parts.append(f"at step {step}")
        if details:
            parts.append(f"({details})")
        super().__init__(" ".join(parts))


class ExperimentTimeoutError(ReproError):
    """An experiment exceeded its wall-clock budget.

    Raised by the hardened batch runner when a single experiment blows
    through the per-experiment ``timeout``; the batch records it as a
    structured :class:`repro.experiments.runner.ExperimentFailure` and
    moves on instead of hanging the whole sweep.
    """


class CheckpointError(ReproError):
    """An experiment checkpoint file is unusable.

    Raised when a resume is attempted against a checkpoint written for a
    different configuration (scale/seed), an unknown format version, or
    a corrupt file — silently mixing results from two configurations
    would poison the sweep.
    """


class EconomicModelError(ReproError):
    """An economic model was configured with invalid parameters.

    Examples: a value function that is not increasing, a transit-cost
    function violating ``P(1) = 0``, or a price below marginal cost.
    """
