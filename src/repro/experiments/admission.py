"""Guaranteed-bandwidth admission control over the broker multigraph.

The broker set is only useful if the coalition can actually *provision*
guaranteed E2E services over the subtopology it controls.  This
experiment runs that workload end to end: a seeded stream of
guaranteed-bandwidth flow requests arrives, each asking for one of a few
demand classes over a broker-dominated min-latency path, and the
coalition admits a flow iff every parallel edge instance along its path
still has enough *residual* capacity — first-come-first-served, no
preemption.

The hot path is the **vectorized batch admission kernel**
(:func:`admit_batch`): it computes the exact sequential FCFS outcome of
millions of flows with NumPy array passes only — no per-flow Python
loop.  The trick is a fixed-point iteration over the admitted set:

* guess optimistically that every flow is admitted;
* for every (flow, edge) incidence, compute the arrival-ordered
  *exclusive* prefix load of currently-admitted earlier flows on that
  edge (one ``lexsort`` + segmented ``cumsum``);
* a flow survives iff ``prior_load + demand <= capacity`` on all its
  edges; iterate until the admitted set stops changing.

Any fixed point of that map *is* the sequential result (induction on
arrival order: flow ``i``'s feasibility only reads flows ``j < i``,
which are already correct), and after ``k`` iterations the first ``k``
flows are final — so the loop terminates, in practice after a handful of
rounds.  Demand classes are powers of two (:data:`DEMAND_CLASSES`), so
every partial sum of demands is exact in float64 regardless of
summation order and the kernel is **bit-identical** to the per-flow
reference oracle (:func:`admit_stream_reference`), which the
differential tests pin.

On top of the kernel, :func:`run_admission_study` sweeps offered load,
reports accept ratios and saturation, re-scores the broker set under
capacity exhaustion, and mirrors the final load level into the
domination engine's ``reserve`` state (then ``verify()``s it).
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass

import numpy as np

from repro.core.engine import DominationEngine
from repro.core.greedy import greedy_max_coverage
from repro.datasets.loader import MULTIGRAPH_SEED_SALT
from repro.datasets.synthetic_internet import expand_internet_multigraph
from repro.exceptions import AlgorithmError
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentResult, register
from repro.graph.multigraph import MultiGraph
from repro.routing.qos import multigraph_qos_path
from repro.utils.rng import SeedLike, ensure_rng

#: Guaranteed-bandwidth demand classes in Gbps.  Exact powers of two:
#: sums of any subset are exact in float64 in any order, which is what
#: makes the vectorized kernel bit-identical to the sequential oracle.
DEMAND_CLASSES = np.array([0.25, 0.5, 1.0, 2.0], dtype=np.float64)

#: Offered-load sweep, as multiples of the per-level flow count.
DEFAULT_LOAD_LEVELS = (0.25, 0.5, 1.0, 2.0, 4.0)


@dataclass(frozen=True)
class PathPool:
    """Precomputed broker-dominated QoS paths, CSR over edge instances.

    Path ``p`` traverses instances ``instances[indptr[p]:indptr[p+1]]``
    of the owning multigraph.  ``pairs[p]`` is its (source, target) and
    ``latencies[p]`` its end-to-end latency at pool-build time.
    """

    indptr: np.ndarray
    instances: np.ndarray
    pairs: np.ndarray
    latencies: np.ndarray

    @property
    def num_paths(self) -> int:
        return len(self.indptr) - 1


@dataclass(frozen=True)
class AdmissionOutcome:
    """Result of admitting one flow stream against a capacity vector."""

    admitted: np.ndarray
    residual: np.ndarray
    iterations: int

    @property
    def num_admitted(self) -> int:
        return int(np.count_nonzero(self.admitted))

    def digest(self) -> str:
        """SHA-256 of the admitted mask and residual state (bit-exact)."""
        h = hashlib.sha256()
        h.update(np.packbits(self.admitted).tobytes())
        h.update(np.ascontiguousarray(self.residual).tobytes())
        return h.hexdigest()


def build_path_pool(
    multigraph: MultiGraph,
    engine: DominationEngine,
    *,
    num_pairs: int,
    seed: SeedLike,
    demand_floor_gbps: float = float(DEMAND_CLASSES[-1]),
    max_attempts_factor: int = 20,
) -> PathPool:
    """Sample broker-dominated min-latency paths for random endpoint pairs.

    Each path is computed at the *largest* demand class as its bandwidth
    floor, so every pooled path can statically carry any demand class —
    contention at admission time is purely about residual capacity.
    Pairs with no compliant dominated path are skipped and resampled.
    """
    if num_pairs < 1:
        raise AlgorithmError(f"num_pairs must be >= 1, got {num_pairs}")
    rng = ensure_rng(seed)
    n = multigraph.num_nodes
    indptr = [0]
    instances: list[np.ndarray] = []
    pairs: list[tuple[int, int]] = []
    latencies: list[float] = []
    attempts = 0
    max_attempts = num_pairs * max_attempts_factor
    while len(pairs) < num_pairs and attempts < max_attempts:
        attempts += 1
        s, t = int(rng.integers(n)), int(rng.integers(n))
        if s == t:
            continue
        route = multigraph_qos_path(
            multigraph, s, t, demand_gbps=demand_floor_gbps, engine=engine
        )
        if route is None:
            continue
        pairs.append((s, t))
        instances.append(np.asarray(route.instance_ids, dtype=np.int64))
        indptr.append(indptr[-1] + len(route.instance_ids))
        latencies.append(route.latency_ms)
    if not pairs:
        raise AlgorithmError(
            "no serveable pairs found; broker set too small or demand "
            "floor infeasible"
        )
    return PathPool(
        indptr=np.asarray(indptr, dtype=np.int64),
        instances=(
            np.concatenate(instances)
            if instances
            else np.zeros(0, dtype=np.int64)
        ),
        pairs=np.asarray(pairs, dtype=np.int64),
        latencies=np.asarray(latencies, dtype=np.float64),
    )


def draw_flows(
    pool: PathPool, num_flows: int, *, seed: SeedLike
) -> tuple[np.ndarray, np.ndarray]:
    """Seeded flow stream: (path index, demand class) per flow, in
    arrival order."""
    if num_flows < 1:
        raise AlgorithmError(f"num_flows must be >= 1, got {num_flows}")
    rng = ensure_rng(seed)
    flow_paths = rng.integers(pool.num_paths, size=num_flows).astype(np.int64)
    flow_demands = DEMAND_CLASSES[
        rng.integers(len(DEMAND_CLASSES), size=num_flows)
    ]
    return flow_paths, flow_demands


def _validate_stream(
    capacity: np.ndarray,
    pool: PathPool,
    flow_paths: np.ndarray,
    flow_demands: np.ndarray,
) -> None:
    if flow_paths.shape != flow_demands.shape or flow_paths.ndim != 1:
        raise AlgorithmError("flow_paths/flow_demands must be 1-D and aligned")
    if len(flow_paths) and (
        flow_paths.min() < 0 or flow_paths.max() >= pool.num_paths
    ):
        raise AlgorithmError("flow path index out of range")
    if len(flow_demands) and (flow_demands <= 0).any():
        raise AlgorithmError("flow demands must be positive")
    if len(pool.instances) and pool.instances.max() >= len(capacity):
        raise AlgorithmError("path pool references instances beyond capacity array")


def admit_batch(
    capacity: np.ndarray,
    pool: PathPool,
    flow_paths: np.ndarray,
    flow_demands: np.ndarray,
) -> AdmissionOutcome:
    """Exact sequential FCFS admission, computed with vectorized passes.

    Returns the same admitted set a per-flow loop over arrival order
    produces (see the module docstring for the fixed-point argument),
    bit-identically when demands are exact binary fractions.  Work per
    iteration is ``O(total path-edge incidences)`` in NumPy; the number
    of iterations is bounded by the flow count but is tiny in practice
    (prefix-correctness grows by at least one flow per round).
    """
    capacity = np.ascontiguousarray(capacity, dtype=np.float64)
    flow_paths = np.asarray(flow_paths, dtype=np.int64)
    flow_demands = np.asarray(flow_demands, dtype=np.float64)
    _validate_stream(capacity, pool, flow_paths, flow_demands)
    num_flows = len(flow_paths)
    if num_flows == 0:
        return AdmissionOutcome(
            admitted=np.zeros(0, dtype=bool),
            residual=capacity.copy(),
            iterations=0,
        )

    lens = pool.indptr[flow_paths + 1] - pool.indptr[flow_paths]
    total = int(lens.sum())
    flow_of_entry = np.repeat(np.arange(num_flows, dtype=np.int64), lens)
    entry_starts = np.zeros(num_flows, dtype=np.int64)
    np.cumsum(lens[:-1], out=entry_starts[1:])
    within = np.arange(total, dtype=np.int64) - np.repeat(entry_starts, lens)
    edge_of_entry = pool.instances[pool.indptr[flow_paths][flow_of_entry] + within]

    # Sort incidences by (edge, arrival order); within each edge segment
    # the entries are then exactly in the order the sequential oracle
    # accumulates them.
    order = np.lexsort((flow_of_entry, edge_of_entry))
    e_sorted = edge_of_entry[order]
    f_sorted = flow_of_entry[order]
    d_sorted = flow_demands[f_sorted]
    cap_sorted = capacity[e_sorted]
    new_segment = np.empty(total, dtype=bool)
    new_segment[0] = True
    np.not_equal(e_sorted[1:], e_sorted[:-1], out=new_segment[1:])
    seg_id = np.cumsum(new_segment) - 1
    seg_first = np.flatnonzero(new_segment)

    admitted = np.ones(num_flows, dtype=bool)
    iterations = 0
    for _ in range(num_flows + 1):
        iterations += 1
        contrib = np.where(admitted[f_sorted], d_sorted, 0.0)
        cums = np.cumsum(contrib)
        # Exclusive prefix within each edge segment: global exclusive
        # prefix minus the segment's base.  All quantities are sums of
        # binary-fraction demands, so every subtraction is exact.
        excl = cums - contrib
        prior = excl - excl[seg_first][seg_id]
        ok_entry_sorted = prior + d_sorted <= cap_sorted
        ok_entry = np.empty(total, dtype=bool)
        ok_entry[order] = ok_entry_sorted
        flow_ok = np.logical_and.reduceat(ok_entry, entry_starts)
        if np.array_equal(flow_ok, admitted):
            break
        admitted = flow_ok
    used = np.zeros(len(capacity), dtype=np.float64)
    np.add.at(used, e_sorted, np.where(admitted[f_sorted], d_sorted, 0.0))
    return AdmissionOutcome(
        admitted=admitted, residual=capacity - used, iterations=iterations
    )


def admit_stream_reference(
    capacity: np.ndarray,
    pool: PathPool,
    flow_paths: np.ndarray,
    flow_demands: np.ndarray,
) -> AdmissionOutcome:
    """Per-flow Python-loop oracle with the exact sequential semantics.

    The differential tests run this against :func:`admit_batch` on
    sampled streams; the two must agree bit-for-bit.
    """
    capacity = np.ascontiguousarray(capacity, dtype=np.float64)
    flow_paths = np.asarray(flow_paths, dtype=np.int64)
    flow_demands = np.asarray(flow_demands, dtype=np.float64)
    _validate_stream(capacity, pool, flow_paths, flow_demands)
    used = np.zeros(len(capacity), dtype=np.float64)
    admitted = np.zeros(len(flow_paths), dtype=bool)
    for i in range(len(flow_paths)):
        p = int(flow_paths[i])
        edges = pool.instances[pool.indptr[p] : pool.indptr[p + 1]]
        demand = float(flow_demands[i])
        if np.all(used[edges] + demand <= capacity[edges]):
            used[edges] += demand
            admitted[i] = True
    return AdmissionOutcome(
        admitted=admitted, residual=capacity - used, iterations=len(flow_paths)
    )


def rescore_brokers_by_residual(
    multigraph: MultiGraph,
    brokers: list[int],
    residual: np.ndarray,
) -> list[tuple[int, float]]:
    """Re-rank the broker set by capacity headroom after admission.

    A broker's score is the residual fraction of the aggregate capacity
    on its incident edge instances — brokers whose fabrics the admitted
    load exhausted sink to the bottom, which is the re-scoring a
    capacity-aware selection pass would feed back into Algorithm 1.
    Returns ``(broker, residual_fraction)`` sorted by descending
    headroom (ties towards the smaller id, deterministic).
    """
    if len(residual) != multigraph.num_edge_instances:
        raise AlgorithmError("residual array does not match the multigraph")
    n = multigraph.num_nodes
    node_cap = np.zeros(n, dtype=np.float64)
    node_res = np.zeros(n, dtype=np.float64)
    for ends in (multigraph.edge_src, multigraph.edge_dst):
        np.add.at(node_cap, ends, multigraph.attrs.capacity_gbps)
        np.add.at(node_res, ends, residual)
    scored = []
    for b in brokers:
        cap = node_cap[b]
        frac = float(node_res[b] / cap) if cap > 0 else 1.0
        scored.append((int(b), frac))
    scored.sort(key=lambda item: (-item[1], item[0]))
    return scored


@dataclass(frozen=True)
class AdmissionStudy:
    """Everything one admission sweep produced."""

    result: ExperimentResult
    state_digest: str
    multigraph_digest: str
    total_flows: int
    total_admitted: int
    kernel_seconds: float

    @property
    def flows_per_second(self) -> float:
        if self.kernel_seconds <= 0:
            return float("inf")
        return self.total_flows / self.kernel_seconds


def run_admission_study(
    config: ExperimentConfig,
    *,
    flows_per_level: int = 20_000,
    load_levels: tuple[float, ...] = DEFAULT_LOAD_LEVELS,
    num_pairs: int | None = None,
    broker_fraction: float = 0.019,
) -> AdmissionStudy:
    """Offered-load sweep of FCFS admission over broker-dominated paths.

    Per level ``L``: a fresh residual state, ``round(L *
    flows_per_level)`` seeded flows, one vectorized batch admission.
    The final level's admitted load is additionally mirrored into the
    domination engine's per-bundle ``reserve`` state and ``verify()``d.
    All table values are deterministic for a given (scale, seed); the
    rendered result embeds the bit-exact admission state digest, so the
    ledger's exact-digest regression gate doubles as a repeat-run
    bit-identity check.
    """
    graph = config.graph()
    multigraph = expand_internet_multigraph(
        graph, seed=config.seed + MULTIGRAPH_SEED_SALT
    )
    view = multigraph.simplify()
    budget = max(1, round(broker_fraction * view.graph.num_nodes))
    brokers = greedy_max_coverage(view.graph, budget)
    engine = DominationEngine(view.graph, dict.fromkeys(brokers))
    if num_pairs is None:
        num_pairs = int(np.clip(view.graph.num_nodes // 8, 32, 512))
    pool = build_path_pool(
        multigraph, engine, num_pairs=num_pairs, seed=config.seed + 1
    )

    headers = [
        "load",
        "offered flows",
        "offered Gbps",
        "admitted",
        "accept ratio",
        "saturated links",
        "fixpoint iters",
    ]
    rows: list[tuple] = []
    paper_values: dict[str, float] = {}
    digest = hashlib.sha256()
    total_flows = 0
    total_admitted = 0
    kernel_seconds = 0.0
    last_outcome: AdmissionOutcome | None = None
    last_flows: tuple[np.ndarray, np.ndarray] | None = None
    capacity = multigraph.attrs.capacity_gbps
    for level_idx, level in enumerate(load_levels):
        num_flows = max(1, round(level * flows_per_level))
        flow_paths, flow_demands = draw_flows(
            pool, num_flows, seed=config.seed + 100 + level_idx
        )
        t0 = time.perf_counter()
        outcome = admit_batch(capacity, pool, flow_paths, flow_demands)
        kernel_seconds += time.perf_counter() - t0
        digest.update(outcome.digest().encode())
        total_flows += num_flows
        total_admitted += outcome.num_admitted
        accept = outcome.num_admitted / num_flows
        touched = np.unique(pool.instances)
        saturated = int(
            np.count_nonzero(
                outcome.residual[touched] < float(DEMAND_CLASSES[0])
            )
        )
        rows.append(
            (
                f"{level:g}x",
                num_flows,
                int(round(float(flow_demands.sum()))),
                outcome.num_admitted,
                round(accept, 4),
                saturated,
                outcome.iterations,
            )
        )
        paper_values[f"accept@{level:g}x"] = round(accept, 6)
        last_outcome = outcome
        last_flows = (flow_paths, flow_demands)

    assert last_outcome is not None and last_flows is not None
    # Mirror the final level's admitted load into the engine's bundle
    # reservations: per simple edge, the sum of admitted demand over its
    # parallel instances — the engine's invariant checker then audits
    # 0 <= reserved <= aggregate bundle capacity.
    admitted_used = multigraph.attrs.capacity_gbps - last_outcome.residual
    bundle_used = np.zeros(view.graph.num_edges, dtype=np.float64)
    np.add.at(bundle_used, view.edge_of_instance, admitted_used)
    loaded = np.flatnonzero(bundle_used > 0)
    if len(loaded):
        engine.checkpoint()
        engine.reserve(loaded, bundle_used[loaded])
    engine.verify()

    rescored = rescore_brokers_by_residual(
        multigraph, brokers, last_outcome.residual
    )
    exhausted = sum(1 for _, frac in rescored if frac < 0.5)
    top = ", ".join(f"AS{b}:{frac:.2f}" for b, frac in rescored[:3])
    state_digest = digest.hexdigest()
    notes = (
        f"{pool.num_paths} pooled dominated paths, {len(brokers)} brokers; "
        f"final-level rescoring: {exhausted} brokers below 50% headroom, "
        f"top headroom [{top}]; state digest {state_digest[:16]}"
    )
    result = ExperimentResult(
        experiment_id="admission",
        title=(
            "Guaranteed-bandwidth admission over the broker multigraph "
            f"({config.scale}, seed {config.seed})"
        ),
        headers=headers,
        rows=rows,
        notes=notes,
        paper_values=paper_values,
    )
    return AdmissionStudy(
        result=result,
        state_digest=state_digest,
        multigraph_digest=multigraph.digest(),
        total_flows=total_flows,
        total_admitted=total_admitted,
        kernel_seconds=kernel_seconds,
    )


@register("admission")
def run_admission(config: ExperimentConfig) -> ExperimentResult:
    """Registry entry point: the admission sweep at smoke-friendly size."""
    return run_admission_study(config).result
