"""Shared experiment configuration.

Every experiment takes an :class:`ExperimentConfig`, so the whole suite
can be re-run at a different scale / seed / sampling fidelity by changing
one object.  The defaults target the ``small`` profile (3,019 nodes),
where the connectivity engine runs exactly and the whole suite finishes
in minutes on a laptop; pass ``scale="full"`` for the paper-sized
52,079-node topology.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from functools import lru_cache

from repro.datasets.loader import load_internet
from repro.graph.asgraph import ASGraph
from repro.obs import add_counter, get_tracer, observe

#: The paper's three headline broker-set sizes as fractions of the
#: 52,079-node topology: 100, 1,000 and 3,540 brokers.
PAPER_BROKER_FRACTIONS: dict[str, float] = {
    "0.19%": 100 / 52_079,
    "1.9%": 1_000 / 52_079,
    "6.8%": 3_540 / 52_079,
}

#: Paper-reported saturated connectivity for those sizes (Table 1).
PAPER_COVERAGE: dict[str, float] = {
    "0.19%": 0.5313,
    "1.9%": 0.8541,
    "6.8%": 0.9929,
}


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by all experiments."""

    scale: str = "small"
    seed: int = 1
    #: BFS sources for connectivity curves; ``None`` = exact (every vertex).
    num_sources: int | None = None
    max_hops: int = 8
    #: (alpha, beta)-graph hop bound used by Algorithm 2.
    beta: int = 4
    #: Kernel backend for the hot selection/connectivity kernels.
    #: ``None`` defers to ``REPRO_KERNEL_BACKEND`` (default ``python``);
    #: every backend yields bit-identical results, so this is purely a
    #: speed knob — but the resolved name is recorded in run provenance.
    kernel_backend: str | None = None

    def graph(self) -> ASGraph:
        """The topology for this configuration (cached per scale/seed)."""
        return _cached_graph(self.scale, self.seed)

    def resolved_backend(self) -> str:
        """The kernel backend after env/default resolution."""
        from repro.core.registry import resolve_backend

        return resolve_backend(self.kernel_backend)

    def broker_budgets(self) -> dict[str, int]:
        """The paper's broker fractions translated to this scale."""
        n = self.graph().num_nodes
        return {
            label: max(1, round(frac * n))
            for label, frac in PAPER_BROKER_FRACTIONS.items()
        }

    def with_scale(self, scale: str) -> "ExperimentConfig":
        return replace(self, scale=scale)


# Instrumentation sits under ``lru_cache`` so only real builds emit a
# graph.build span/timing — cache hits bypass it entirely.
@lru_cache(maxsize=4)
def _cached_graph(scale: str, seed: int) -> ASGraph:
    t0 = time.perf_counter()
    with get_tracer().span("graph.build", scale=scale, seed=seed):
        graph = load_internet(scale, seed=seed)
    add_counter("graph.build.calls")
    observe("graph.build.seconds", time.perf_counter() - t0)
    return graph
