"""Table 3 — l-hop E2E connectivity across topology families.

The paper contrasts the AS topology (with and without IXPs as independent
entities) against ER-Random, WS-Small-World and BA-Scale-free graphs over
the same vertex count, showing that the short-path structure the broker
framework exploits is specific to the Internet's layered topology.
Connectivity here is the *free* curve (``B = V``): reachability within
``l`` hops.
"""

from __future__ import annotations

from repro.core.connectivity import connectivity_curve
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentResult, register
from repro.graph.generators import barabasi_albert, erdos_renyi, watts_strogatz

#: Paper values at l = 4 for orientation (percent).
PAPER_L4 = {
    "ASes with IXPs": 99.21,
    "ASes without IXPs": 90.02,
}


@register("table3")
def run(config: ExperimentConfig) -> ExperimentResult:
    graph = config.graph()
    n = graph.num_nodes
    m = graph.num_edges
    hops = list(range(1, config.max_hops + 1))
    seed = config.seed

    without_ixp, _ = graph.without_ixps()
    topologies = {
        "ASes with IXPs": graph,
        "ASes without IXPs": without_ixp,
        "ER-Random": erdos_renyi(n, m, seed=seed),
        "WS-Small-World": watts_strogatz(
            n, max(2 * round(m / n / 2), 2), 0.1, seed=seed
        ),
        "BA-Scale-free": barabasi_albert(n, max(m // n, 1), seed=seed),
    }
    rows = []
    curves = {}
    for name, topo in topologies.items():
        curve = connectivity_curve(
            topo,
            None,
            max_hops=config.max_hops,
            num_sources=config.num_sources,
            seed=seed,
        )
        curves[name] = curve
        row = [name] + [f"{100 * curve.at(h):.2f}%" for h in hops]
        row.append(f"{100 * curve.saturated:.2f}%")
        rows.append(tuple(row))

    return ExperimentResult(
        experiment_id="table3",
        title=f"Table 3: l-hop E2E connectivity per topology (n={n})",
        headers=["Topology"] + [f"l={h}" for h in hops] + ["saturated"],
        rows=rows,
        paper_values={"curves": curves, "paper_l4_percent": PAPER_L4},
        notes="Free-path curves (no broker restriction); paper reports "
        "99.21% at l=4 for ASes-with-IXPs.",
    )
