"""Fig. 6 (extension) — disruption time: broker re-stitching vs BGP.

The resilience experiments (fig5d) established *what* survives a fault
campaign; this one measures *how long* the disruption lasts.  For each
fault kind a single-shot outage fires at step 1 — simultaneous so the
measured time is pure reaction time, not campaign duration — and the
same schedule drives both convergence models: the broker control plane
(detect, re-plan, install) and the message-level BGP baseline (session
timeouts, path exploration, MRAI pacing).  Replicates vary the outage
seed; the medians land in the table and the full disruption-time
samples feed the dashboard's CDF.
"""

from __future__ import annotations

import statistics

from repro.core.maxsg import maxsg
from repro.core.robustness import coverage_contribution_order
from repro.exceptions import AlgorithmError
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentResult, register
from repro.graph.asgraph import ASGraph
from repro.resilience import (
    FaultEvent,
    FaultKind,
    FaultSchedule,
    SlaPolicy,
    link_cut_campaign,
    regional_outage,
)
from repro.simulation.convergence import (
    BGPConvergenceSimulator,
    BrokerConvergenceSimulator,
    ConvergenceReport,
    LatencyModel,
)
from repro.utils.rng import ensure_rng

#: Fault kinds exercised by the disruption-time experiment.
FAULT_KINDS = ("targeted", "regional", "linkcut")

#: Outage seeds per fault kind (config.seed + offset).
NUM_REPLICATES = 3

#: Sampled destinations for the BGP baseline (per-message state is
#: O(nodes x destinations); the sample keeps the small profile honest
#: without tracking every one of the n^2 pairs).
NUM_DESTINATIONS = 6


def build_outage_schedule(
    graph: ASGraph, brokers: list[int], kind: str, seed: int
) -> FaultSchedule:
    """One single-shot outage of the given kind, firing at step 1.

    ``targeted`` drops a seeded sample drawn from the top half of the
    coverage-contribution hit list (the high-value brokers an adversary
    or defection wave would take), ``regional`` is a radius-1
    neighbourhood outage around a seeded epicenter, and ``linkcut``
    severs a seeded batch of broker-incident links.  All events share
    step 1 so both convergence models face one simultaneous incident.
    """
    if kind == "targeted":
        order = coverage_contribution_order(graph, brokers)
        pool = order[: max(4, len(order) // 2)]
        count = max(2, len(pool) // 3)
        rng = ensure_rng(seed)
        victims = sorted(
            int(b) for b in rng.choice(pool, size=count, replace=False)
        )
        events = [
            FaultEvent(1, FaultKind.BROKER_DOWN, node=b, cause="targeted")
            for b in victims
        ]
        return FaultSchedule.from_events(1, events, description="targeted")
    if kind == "regional":
        return regional_outage(graph, brokers, radius=1, step=1, seed=seed)
    if kind == "linkcut":
        return link_cut_campaign(
            graph,
            num_steps=1,
            cuts_per_step=max(10, graph.num_edges // 500),
            seed=seed,
            brokers=brokers,
        )
    raise AlgorithmError(
        f"unknown fault kind {kind!r}; expected one of {FAULT_KINDS}"
    )


def run_disruption_sweep(
    graph: ASGraph,
    brokers: list[int],
    *,
    kinds: tuple[str, ...] = FAULT_KINDS,
    replicates: int = NUM_REPLICATES,
    seed: int = 1,
    latency: LatencyModel | None = None,
    policy: SlaPolicy | None = None,
    num_destinations: int = NUM_DESTINATIONS,
) -> list[dict]:
    """Run both models over every (kind, replicate) cell.

    Returns one dict per cell: ``{"kind", "seed", "broker", "bgp"}``
    with the two :class:`ConvergenceReport` objects.  Shared by the
    fig6 experiment, the ``repro convergence`` CLI and the benchmark so
    all three measure identical campaigns.
    """
    latency = latency or LatencyModel()
    policy = policy or SlaPolicy(
        threshold=0.95, repair_budget=max(4, len(brokers) // 8)
    )
    cells: list[dict] = []
    for kind in kinds:
        for replica in range(replicates):
            outage_seed = seed + replica
            schedule = build_outage_schedule(graph, brokers, kind, outage_seed)
            broker_report = BrokerConvergenceSimulator(
                graph, brokers, schedule,
                latency=latency, policy=policy, seed=outage_seed,
            ).run()
            bgp_report = BGPConvergenceSimulator(
                graph, schedule,
                latency=latency, seed=outage_seed,
                num_destinations=num_destinations,
            ).run()
            cells.append({
                "kind": kind,
                "seed": outage_seed,
                "broker": broker_report,
                "bgp": bgp_report,
            })
    return cells


def disruption_times(cells: list[dict], model: str) -> list[float]:
    """Time-to-full-convergence samples of one model, CDF-ready (sorted)."""
    times = [
        cell[model].time_to_full_convergence
        for cell in cells
        if cell[model].time_to_full_convergence is not None
    ]
    return sorted(times)


def _median(values: list[float]) -> float | None:
    return statistics.median(values) if values else None


def _fmt(value: float | None, suffix: str = "s") -> str:
    return "-" if value is None else f"{value:.2f}{suffix}"


def summarize_cells(cells: list[dict]) -> list[tuple]:
    """Per-(kind, model) median rows for the fig6 table."""
    rows: list[tuple] = []
    for kind in dict.fromkeys(cell["kind"] for cell in cells):
        subset = [cell for cell in cells if cell["kind"] == kind]
        for model in ("broker", "bgp"):
            reports: list[ConvergenceReport] = [c[model] for c in subset]
            ttfr = _median([
                r.time_to_first_repair for r in reports
                if r.time_to_first_repair is not None
            ])
            ttc = _median([
                r.time_to_full_convergence for r in reports
                if r.time_to_full_convergence is not None
            ])
            dark = _median([r.pair_seconds_dark for r in reports])
            msgs = _median([float(r.messages_sent) for r in reports])
            rows.append((
                kind,
                model,
                _fmt(ttfr),
                _fmt(ttc),
                _fmt(dark, ""),
                f"{msgs:.0f}" if msgs is not None else "-",
            ))
    return rows


@register("fig6")
def run_fig6(config: ExperimentConfig) -> ExperimentResult:
    graph = config.graph()
    budget = config.broker_budgets()["1.9%"]
    brokers = maxsg(graph, budget)
    cells = run_disruption_sweep(graph, brokers, seed=config.seed)
    broker_ttc = disruption_times(cells, "broker")
    bgp_ttc = disruption_times(cells, "bgp")
    ratio = ""
    if broker_ttc and bgp_ttc:
        ratio = (
            f"median disruption: broker {statistics.median(broker_ttc):.2f}s "
            f"vs BGP {statistics.median(bgp_ttc):.2f}s "
            f"({statistics.median(bgp_ttc) / max(statistics.median(broker_ttc), 1e-9):.1f}x)"
        )
    return ExperimentResult(
        experiment_id="fig6",
        title=(
            f"Fig. 6: disruption time under failure, |B|={len(brokers)} "
            f"({NUM_REPLICATES} replicates x {len(FAULT_KINDS)} fault kinds)"
        ),
        headers=[
            "fault kind", "model", "med TTFR", "med TTC",
            "med pair-s dark", "med msgs",
        ],
        rows=summarize_cells(cells),
        notes=(
            "Single-shot outages at step 1; TTC measured from the first "
            "fault.  The broker plane pays detection + control RTT + FIB "
            "install once, the BGP baseline explores paths across MRAI "
            f"rounds.  {ratio}"
        ),
    )
