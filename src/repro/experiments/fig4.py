"""Fig. 4 — where the brokers live: DB crowds the core, MaxSG spreads.

The paper's disc plots show the Degree-Based set packed into the network
core, "leaving the network edge mostly uncovered", while the MaxSG
alliance covers the outer ring too.  We compare the radial profiles of
both broker sets and the radial distribution of the vertices they leave
uncovered.
"""

from __future__ import annotations

import numpy as np

from repro.core.baselines import degree_based
from repro.core.coverage import covered_mask
from repro.core.maxsg import maxsg
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentResult, register
from repro.graph.layout import radial_layout, radial_profile


@register("fig4")
def run(config: ExperimentConfig) -> ExperimentResult:
    graph = config.graph()
    budget = config.broker_budgets()["6.8%"]
    layout = radial_layout(graph, seed=config.seed)

    rows = []
    values = {}
    for name, brokers in (
        ("Degree-Based", degree_based(graph, budget)),
        ("MaxSG", maxsg(graph, budget)),
    ):
        profile = radial_profile(layout, np.asarray(brokers))
        uncovered = np.flatnonzero(~covered_mask(graph, brokers))
        uncovered_profile = radial_profile(layout, uncovered)
        rows.append(
            (
                name,
                len(brokers),
                f"{profile.mean_radius:.3f}",
                f"{100 * profile.edge_fraction:.1f}%",
                len(uncovered),
                f"{uncovered_profile.mean_radius:.3f}" if len(uncovered) else "-",
            )
        )
        values[name] = {
            "broker_profile": profile,
            "uncovered_count": len(uncovered),
            "uncovered_profile": uncovered_profile,
        }
    return ExperimentResult(
        experiment_id="fig4",
        title=f"Fig. 4: broker placement, core vs edge (k={budget})",
        headers=[
            "Algorithm",
            "|B|",
            "Broker mean radius",
            "Brokers at edge",
            "Uncovered nodes",
            "Uncovered mean radius",
        ],
        rows=rows,
        paper_values=values,
        notes="Paper: DB brokers crowd the core and leave the edge uncovered; "
        "MaxSG covers the outer ring.",
    )
