"""Table 1 — alliance size vs QoS coverage, our approach vs prior art.

The paper's headline comparison: MaxSG broker sets at 0.19 % / 1.9 % /
6.8 % of all nodes against "everyone cooperates" ([13], [14]), "one
broker per AS" ([18], [19]) and "all IXPs" ([20]-[22]).  QoS coverage is
the saturated E2E connectivity with B-dominating path guarantees.
"""

from __future__ import annotations

from repro.core.baselines import ixp_based
from repro.core.connectivity import saturated_connectivity
from repro.core.maxsg import maxsg
from repro.experiments.config import PAPER_COVERAGE, ExperimentConfig
from repro.experiments.runner import ExperimentResult, register


@register("table1")
def run(config: ExperimentConfig) -> ExperimentResult:
    graph = config.graph()
    backend = config.resolved_backend()
    n = graph.num_nodes
    rows: list[tuple[object, ...]] = []
    paper = {}
    for label, budget in config.broker_budgets().items():
        brokers = maxsg(graph, budget, backend=backend)
        coverage = saturated_connectivity(graph, brokers)
        rows.append(
            (
                "Our approach (MaxSG)",
                f"{len(brokers)} ({label} of {n})",
                f"{100 * coverage:.2f}%",
                f"{100 * PAPER_COVERAGE[label]:.2f}%",
            )
        )
        paper[label] = {
            "paper": PAPER_COVERAGE[label],
            "measured": coverage,
            "budget": budget,
        }

    # All-AS alliance ([13], [14]) — every AS cooperates: full coverage of
    # whatever is connected.
    all_nodes = list(range(n))
    full = saturated_connectivity(graph, all_nodes)
    rows.append(
        ("[13], [14] (all ASes)", f"{graph.num_ases} (all ASes)",
         f"{100 * full:.2f}%", "100.00%")
    )
    rows.append(
        ("[18], [19] (>=1 broker/AS)", f">={graph.num_ases}",
         f"{100 * full:.2f}%", "100.00%")
    )

    # All-IXP mediators ([20]-[22]).
    ixps = ixp_based(graph)
    ixp_cov = saturated_connectivity(graph, ixps) if ixps else 0.0
    rows.append(
        ("[20]-[22] (all IXPs)", f"{len(ixps)} (all IXPs)",
         f"{100 * ixp_cov:.2f}%", "15.70%")
    )
    paper["ixp"] = {"paper": 0.157, "measured": ixp_cov}

    return ExperimentResult(
        experiment_id="table1",
        title=f"Table 1: alliance size vs QoS coverage (scale={config.scale}, n={n})",
        headers=["Method", "Alliance size", "QoS coverage", "Paper"],
        rows=rows,
        paper_values=paper,
        notes="QoS coverage = saturated E2E connectivity with B-dominating paths.",
    )
