"""Fig. 5d (extension) — degradation and recovery under a fault campaign.

The paper's Section 7.2 argues the coalition is *stable* economically;
this experiment asks whether it is stable *operationally*: a seeded
mixed fault campaign (independent crashes + a correlated regional outage
+ broker-incident link cuts) is replayed twice over the 1.9 % MaxSG
alliance — once raw, once with the SLA self-healer recruiting budgeted
replacements — and the two connectivity trajectories are tabulated side
by side with the repair cost.
"""

from __future__ import annotations

from repro.core.maxsg import maxsg
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentResult, register
from repro.resilience import (
    SlaPolicy,
    compose,
    independent_crashes,
    link_cut_campaign,
    regional_outage,
    replay_schedule,
)

#: Campaign shape: long enough to show decay, a mid-run disaster, and
#: the post-disaster recovery tail.
NUM_STEPS = 8
OUTAGE_STEP = 4


def build_mixed_schedule(graph, brokers, seed: int):
    """The fig5d fault campaign (shared with the CLI's ``mixed`` model)."""
    return compose(
        independent_crashes(
            brokers, num_steps=NUM_STEPS, crash_prob=0.04, seed=seed
        ),
        regional_outage(graph, brokers, radius=1, step=OUTAGE_STEP, seed=seed),
        link_cut_campaign(
            graph,
            num_steps=NUM_STEPS,
            cuts_per_step=max(1, graph.num_edges // 500),
            seed=seed,
            brokers=brokers,
        ),
        description="mixed",
    )


@register("fig5d")
def run_fig5d(config: ExperimentConfig) -> ExperimentResult:
    graph = config.graph()
    budget = config.broker_budgets()["1.9%"]
    brokers = maxsg(graph, budget)
    schedule = build_mixed_schedule(graph, brokers, config.seed)
    policy = SlaPolicy(threshold=0.9, repair_budget=max(2, budget // 8))
    raw = replay_schedule(graph, brokers, schedule, policy=policy, heal=False)
    healed = replay_schedule(graph, brokers, schedule, policy=policy, heal=True)
    rows = []
    for r_step, h_step in zip(raw.steps, healed.steps):
        rows.append(
            (
                h_step.step,
                h_step.faults,
                f"{100 * r_step.degraded:.1f}%",
                f"{100 * h_step.degraded:.1f}%",
                f"{100 * h_step.healed:.1f}%",
                len(h_step.added),
            )
        )
    return ExperimentResult(
        experiment_id="fig5d",
        title=(
            f"Fig. 5d: resilience of the {len(brokers)}-alliance "
            f"({len(schedule)} faults, SLA {100 * policy.threshold:.0f}%)"
        ),
        headers=["step", "faults", "no-heal", "degraded", "healed", "+brokers"],
        rows=rows,
        paper_values={
            "baseline": healed.baseline,
            "unhealed_final": raw.final_connectivity,
            "healed_final": healed.final_connectivity,
            "total_added": healed.total_added,
            "num_repairs": len(healed.repairs),
            "recovery_times": healed.recovery_times(),
        },
        notes=(
            f"no-heal floor {100 * raw.min_degraded:.1f}% vs healed floor "
            f"{100 * healed.min_degraded:.1f}%; {len(healed.repairs)} repairs "
            f"recruited {healed.total_added} replacement brokers."
        ),
    )
