"""Fig. 5 — properties of the MaxSG alliance.

* 5a: composition by business category + the fraction of E2E connections
  the alliance carries without hiring non-brokers (>90 % in the paper).
* 5b: recovery of E2E connectivity when a fraction of inter-broker links
  is renegotiated to bidirectional/coalition terms.
* 5c: the collapse under directional business-relationship routing as a
  function of broker-set size.
"""

from __future__ import annotations

import numpy as np

from repro.core.maxsg import maxsg
from repro.core.connectivity import saturated_connectivity
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentResult, register
from repro.routing.broker_routing import broker_only_fraction
from repro.routing.policies import DirectionalPolicy, policy_connectivity_curve
from repro.types import BusinessCategory


@register("fig5a")
def run_fig5a(config: ExperimentConfig, *, num_pairs: int = 400) -> ExperimentResult:
    graph = config.graph()
    budget = config.broker_budgets()["6.8%"]
    brokers = maxsg(graph, budget)
    cats = graph.categories[np.asarray(brokers)]
    rows = []
    for cat in BusinessCategory:
        count = int(np.count_nonzero(cats == int(cat)))
        rows.append((cat.name, count, f"{100 * count / len(brokers):.1f}%"))
    only = broker_only_fraction(
        graph, brokers, num_pairs=num_pairs, seed=config.seed
    )
    rows.append(("broker-only E2E connections", "-", f"{100 * only:.1f}%"))
    return ExperimentResult(
        experiment_id="fig5a",
        title=f"Fig. 5a: composition of the {len(brokers)}-alliance",
        headers=["Category", "Count", "Share"],
        rows=rows,
        paper_values={"broker_only_fraction": only, "alliance_size": len(brokers)},
        notes="Paper: diversified composition; >90% of connections carried "
        "by the alliance without hiring non-brokers.",
    )


@register("fig5b")
def run_fig5b(config: ExperimentConfig) -> ExperimentResult:
    graph = config.graph()
    budgets = config.broker_budgets()
    fractions = (0.0, 0.1, 0.3, 1.0)
    rows = []
    values = {}
    for label in ("1.9%", "6.8%"):
        brokers = maxsg(graph, budgets[label])
        free = saturated_connectivity(graph, brokers)
        cells = [f"MaxSG {label} (k={len(brokers)})", f"{100 * free:.1f}%"]
        series = {"free": free}
        for q in fractions:
            curve = policy_connectivity_curve(
                graph,
                brokers,
                policy=DirectionalPolicy.DIRECTIONAL,
                bidirectional_fraction=q,
                max_hops=10,
                num_sources=config.num_sources,
                seed=config.seed,
            )
            series[q] = curve.saturated
            cells.append(f"{100 * curve.saturated:.1f}%")
        rows.append(tuple(cells))
        values[label] = series
    return ExperimentResult(
        experiment_id="fig5b",
        title="Fig. 5b: recovery by renegotiating inter-broker links",
        headers=["Broker set", "free"]
        + [f"directional +{int(100 * q)}%" for q in fractions],
        rows=rows,
        paper_values=values,
        notes="Paper: 1,000 brokers + 30% changes -> 72.5%; 3,540-alliance "
        "+ 30% -> 84.68%.",
    )


@register("fig5c")
def run_fig5c(config: ExperimentConfig) -> ExperimentResult:
    graph = config.graph()
    n = graph.num_nodes
    fractions = (0.0019, 0.019, 0.04, 0.068, 0.12)
    rows = []
    values = {}
    for frac in fractions:
        k = max(1, round(frac * n))
        brokers = maxsg(graph, k)
        free = saturated_connectivity(graph, brokers)
        directional = policy_connectivity_curve(
            graph,
            brokers,
            policy=DirectionalPolicy.DIRECTIONAL,
            max_hops=10,
            num_sources=config.num_sources,
            seed=config.seed,
        ).saturated
        rows.append(
            (
                f"{100 * frac:.2f}% (k={k})",
                f"{100 * free:.1f}%",
                f"{100 * directional:.1f}%",
                f"{100 * (free - directional):.1f} pts",
            )
        )
        values[frac] = {"free": free, "directional": directional}
    return ExperimentResult(
        experiment_id="fig5c",
        title="Fig. 5c: connectivity collapse under directional routing",
        headers=["Broker fraction", "bidirectional", "directional", "loss"],
        rows=rows,
        paper_values=values,
        notes="Paper: sharply decreased E2E connectivity when business "
        "relationships are enforced.",
    )
