"""Experiment registry, result container, and the hardened batch runner.

Each experiment module registers a callable ``ExperimentConfig ->
ExperimentResult``; the CLI and the benchmark suite look experiments up
by their paper artifact id (``"table1"``, ``"fig5b"``, ...).

:func:`run_experiment_batch` is the fault-tolerant entry point for
multi-experiment sweeps: per-experiment retry with exponential backoff
(jitter drawn from a seeded RNG, so a retried batch is reproducible),
per-experiment wall-clock timeouts, JSON checkpoint/resume so a killed
sweep continues where it stopped, and structured
:class:`ExperimentFailure` records so one broken experiment degrades the
batch gracefully instead of aborting it.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from repro.exceptions import CheckpointError, ReproError
from repro.experiments.config import ExperimentConfig
from repro.obs import add_counter, get_logger, get_tracer
from repro.obs.ledger import (
    Ledger,
    RunRecord,
    git_revision,
    now as _ledger_now,
    summarize_observation,
)
from repro.obs.metrics import iter_nonzero_counters
from repro.parallel.cache import ResultCache
from repro.parallel.executor import BACKENDS, parallel_map, run_with_timeout
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.tables import format_table

_log = get_logger("runner")


@dataclass(frozen=True)
class ExperimentResult:
    """Uniform output of every experiment.

    ``rows``/``headers`` hold the regenerated table; ``paper_values``
    (when applicable) maps row keys to the number the paper reports so
    EXPERIMENTS.md can show paper-vs-measured side by side.
    """

    experiment_id: str
    title: str
    headers: Sequence[str]
    rows: list[Sequence[object]]
    notes: str = ""
    paper_values: dict = field(default_factory=dict)

    def render(self) -> str:
        """ASCII rendering for the CLI / bench output."""
        text = format_table(self.headers, self.rows, title=self.title)
        if self.notes:
            text += f"\n  note: {self.notes}"
        return text


_REGISTRY: dict[str, Callable[[ExperimentConfig], ExperimentResult]] = {}


def register(name: str):
    """Decorator adding an experiment function to the registry."""

    def deco(fn: Callable[[ExperimentConfig], ExperimentResult]):
        if name in _REGISTRY:
            raise ReproError(f"duplicate experiment registration: {name}")
        _REGISTRY[name] = fn
        return fn

    return deco


def _ensure_loaded() -> None:
    # Experiment modules self-register on import.
    from repro.experiments import (  # noqa: F401
        ablations,
        admission,
        convergence,
        dynamics,
        economics,
        extensions,
        fig1,
        fig2,
        fig3,
        fig4,
        fig5,
        resilience,
        table1,
        table2,
        table3,
        table4,
        table5,
    )


def list_experiments() -> list[str]:
    """All registered experiment ids, sorted."""
    _ensure_loaded()
    return sorted(_REGISTRY)


def run_experiment(
    name: str, config: ExperimentConfig | None = None
) -> ExperimentResult:
    """Run one experiment by id."""
    _ensure_loaded()
    if name not in _REGISTRY:
        raise ReproError(
            f"unknown experiment {name!r}; available: {sorted(_REGISTRY)}"
        )
    return _REGISTRY[name](config or ExperimentConfig())


# ----------------------------------------------------------------------
# Hardened batch execution
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ExperimentFailure:
    """Structured record of one experiment that exhausted its retries."""

    experiment_id: str
    attempts: int
    error_type: str
    message: str
    elapsed: float

    def as_dict(self) -> dict:
        return {
            "experiment_id": self.experiment_id,
            "attempts": self.attempts,
            "error_type": self.error_type,
            "message": self.message,
            "elapsed": self.elapsed,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentFailure":
        return cls(
            experiment_id=str(data["experiment_id"]),
            attempts=int(data["attempts"]),
            error_type=str(data["error_type"]),
            message=str(data["message"]),
            elapsed=float(data["elapsed"]),
        )


@dataclass(frozen=True)
class BatchResult:
    """Outcome of a hardened multi-experiment run."""

    results: list[ExperimentResult]
    failures: list[ExperimentFailure]
    resumed: tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.failures


def _jsonify(value):
    """Coerce numpy scalars/arrays and tuples into JSON-safe values.

    Arbitrary objects (e.g. a ``DatasetSummary`` stuffed into
    ``paper_values``) degrade to dicts or strings — the rendered table
    only depends on ``headers``/``rows``, so this is lossless where the
    resume-equivalence guarantee needs it to be.
    """
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return [_jsonify(v) for v in value.tolist()]
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonify(v) for k, v in value.items()}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _jsonify(dataclasses.asdict(value))
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


def result_to_dict(result: ExperimentResult) -> dict:
    """JSON-normalized form of an :class:`ExperimentResult`.

    Round-tripping through this form stringifies ``paper_values`` keys
    and turns row tuples into lists — the *rendered* table is identical,
    which is what checkpoint/resume equivalence is defined over.
    """
    return {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "headers": _jsonify(list(result.headers)),
        "rows": _jsonify(result.rows),
        "notes": result.notes,
        "paper_values": _jsonify(result.paper_values),
    }


def result_from_dict(data: dict) -> ExperimentResult:
    return ExperimentResult(
        experiment_id=str(data["experiment_id"]),
        title=str(data["title"]),
        headers=list(data["headers"]),
        rows=[tuple(row) for row in data["rows"]],
        notes=str(data.get("notes", "")),
        paper_values=dict(data.get("paper_values", {})),
    )


def _coverage_from_paper_values(paper_values: dict) -> dict:
    """The deterministic fractions a result reports, keyed by label.

    Experiments shape ``paper_values`` either as ``{label: {"paper": x,
    "measured": y, ...}}`` (the Table-1 style) or as ``{label: number}``;
    both are flattened to ``{label: measured}`` so the ledger's exact
    regression gate covers every deterministic headline value.
    """
    coverage: dict[str, float] = {}
    for label, value in paper_values.items():
        if isinstance(value, dict):
            measured = value.get("measured")
            if isinstance(measured, (int, float)) and not isinstance(
                measured, bool
            ):
                coverage[str(label)] = float(measured)
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            coverage[str(label)] = float(value)
    return coverage


def record_from_result(
    result: ExperimentResult,
    config: ExperimentConfig,
    *,
    elapsed: float | None = None,
    kind: str = "experiment",
) -> RunRecord:
    """Build the ledger :class:`RunRecord` for one experiment result.

    Captures git revision, graph digest (cheap — the graph is lru-cached
    after the experiment ran), the flattened coverage values, the
    process's nonzero counters, the run's wall-clock as a one-observation
    histogram, and the SHA-256 of the rendered table as the exact-match
    ``result_digest``.
    """
    try:
        graph_digest = config.graph().digest()
    except Exception:  # noqa: BLE001 — a record beats no record
        graph_digest = ""
    timings = (
        {"experiment.seconds": summarize_observation(elapsed)}
        if elapsed is not None
        else {}
    )
    return RunRecord(
        experiment=result.experiment_id,
        kind=kind,
        scale=config.scale,
        seed=config.seed,
        git_rev=git_revision(),
        graph_digest=graph_digest,
        params=_experiment_cache_params(config),
        coverage=_coverage_from_paper_values(result.paper_values),
        counters=dict(iter_nonzero_counters()),
        timings=timings,
        result_digest=hashlib.sha256(result.render().encode()).hexdigest(),
        ts=_ledger_now(),
    )


_CHECKPOINT_VERSION = 1


def _load_checkpoint(path: Path, config: ExperimentConfig) -> dict:
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"unreadable checkpoint {path}: {exc}") from exc
    if data.get("version") != _CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint {path} has version {data.get('version')!r}, "
            f"expected {_CHECKPOINT_VERSION}"
        )
    if data.get("scale") != config.scale or data.get("seed") != config.seed:
        raise CheckpointError(
            f"checkpoint {path} was written for scale={data.get('scale')!r} "
            f"seed={data.get('seed')!r}, not scale={config.scale!r} "
            f"seed={config.seed!r}"
        )
    return data


def _write_checkpoint(
    path: Path,
    config: ExperimentConfig,
    completed: dict[str, dict],
    failures: list[ExperimentFailure],
) -> None:
    """Atomic write (tmp file + rename) so a kill never corrupts it."""
    payload = {
        "version": _CHECKPOINT_VERSION,
        "scale": config.scale,
        "seed": config.seed,
        "completed": completed,
        "failures": [f.as_dict() for f in failures],
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=str(path.parent), prefix=path.name, suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle)
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


def backoff_delays(
    retries: int, *, base: float, cap: float, seed: SeedLike
) -> list[float]:
    """Exponential backoff schedule with deterministic jitter.

    Delay before retry ``i`` (1-based) is ``min(cap, base · 2^(i−1))``
    scaled by a jitter factor in ``[1, 2)`` drawn from the seeded RNG, so
    the whole retry timeline of a batch is reproducible.
    """
    rng = ensure_rng(seed)
    return [
        min(cap, base * (2.0 ** i)) * (1.0 + float(rng.random()))
        for i in range(retries)
    ]


def _attempt_experiment(
    name: str,
    config: ExperimentConfig,
    *,
    retries: int,
    timeout: float | None,
    backoff_base: float,
    backoff_cap: float,
    seed: SeedLike,
    sleep: Callable[[float], None] = time.sleep,
) -> tuple[ExperimentResult | None, ExperimentFailure | None, float]:
    """One experiment's full attempt loop (retries + backoff + timeout).

    Returns ``(result, failure, elapsed_seconds)`` — elapsed covers the
    attempts themselves (not backoff sleeps) and is what the run ledger
    records.  Timeouts run through
    :func:`repro.parallel.executor.run_with_timeout` — a fresh daemon
    thread per attempt, so a timed-out attempt is abandoned without
    delaying any later attempt or task (the previous per-experiment
    ``ThreadPoolExecutor`` leaked a live non-daemon worker on every
    timeout).
    """
    fn = _REGISTRY.get(name)
    tracer = get_tracer()
    delays = backoff_delays(retries, base=backoff_base, cap=backoff_cap, seed=seed)
    elapsed_total = 0.0
    last_error: Exception | None = None
    for attempt in range(1, retries + 2):
        start = time.perf_counter()
        add_counter("runner.attempts")
        if attempt > 1:
            add_counter("runner.retries")
        try:
            with tracer.span(
                "experiment.attempt", experiment=name, attempt=attempt
            ):
                if fn is None:
                    raise ReproError(
                        f"unknown experiment {name!r}; "
                        f"available: {sorted(_REGISTRY)}"
                    )
                outcome = run_with_timeout(
                    fn, (config,), timeout=timeout, name=name
                )
        except Exception as exc:  # noqa: BLE001 — graceful degradation
            elapsed_total += time.perf_counter() - start
            last_error = exc
            if attempt <= retries:
                delay = delays[attempt - 1]
                _log.warning(
                    "experiment attempt failed; retrying",
                    extra={
                        "experiment": name,
                        "attempt": attempt,
                        "error": type(exc).__name__,
                        "backoff": round(delay, 3),
                    },
                )
                if delay > 0:
                    sleep(delay)
            continue
        elapsed_total += time.perf_counter() - start
        return outcome, None, elapsed_total
    assert last_error is not None
    add_counter("runner.failures")
    _log.error(
        "experiment exhausted its retries",
        extra={
            "experiment": name,
            "attempts": retries + 1,
            "error": type(last_error).__name__,
        },
    )
    return None, ExperimentFailure(
        experiment_id=name,
        attempts=retries + 1,
        error_type=type(last_error).__name__,
        message=str(last_error),
        elapsed=elapsed_total,
    ), elapsed_total


def _batch_task(task: tuple) -> tuple[str, dict, float]:
    """Worker-side wrapper for one experiment of a parallel batch.

    Returns picklable ``("ok", result_dict, elapsed)`` / ``("fail",
    failure_dict, elapsed)`` tuples; the parent re-inflates them (and
    writes the ledger — workers never touch it, so appends come from
    one process per batch unless the caller opts into sharing a path).
    """
    name, config, retries, timeout, backoff_base, backoff_cap, seed = task
    _ensure_loaded()
    outcome, failure, elapsed = _attempt_experiment(
        name,
        config,
        retries=retries,
        timeout=timeout,
        backoff_base=backoff_base,
        backoff_cap=backoff_cap,
        seed=seed,
    )
    if failure is not None:
        return ("fail", failure.as_dict(), elapsed)
    assert outcome is not None
    return ("ok", result_to_dict(outcome), elapsed)


#: Cache tag for experiment-level entries (``<tag>:<experiment id>``).
_EXPERIMENT_CACHE_TAG = "experiment"


def _experiment_cache_params(config: ExperimentConfig) -> dict:
    """The config knobs an experiment's output can depend on.

    The algorithm-registry fingerprint rides along: a changed roster or
    default knob means cached experiment outputs may no longer match
    what the code would produce.
    """
    from repro.core.registry import registry_fingerprint

    return {
        "scale": config.scale,
        "seed": config.seed,
        "num_sources": config.num_sources,
        "max_hops": config.max_hops,
        "beta": config.beta,
        "kernel_backend": config.resolved_backend(),
        "registry": registry_fingerprint(),
    }


def run_experiment_batch(
    names: Sequence[str],
    config: ExperimentConfig | None = None,
    *,
    retries: int = 0,
    timeout: float | None = None,
    checkpoint: str | Path | None = None,
    backoff_base: float = 0.1,
    backoff_cap: float = 30.0,
    seed: SeedLike = 0,
    sleep: Callable[[float], None] = time.sleep,
    workers: int = 1,
    backend: str = "serial",
    cache_dir: str | Path | None = None,
    ledger: Ledger | str | Path | None = None,
) -> BatchResult:
    """Run many experiments, surviving per-experiment failures.

    Each experiment gets ``1 + retries`` attempts; failed attempts back
    off exponentially with deterministic jitter (``seed``).  ``timeout``
    bounds each attempt's wall-clock seconds.  With ``checkpoint``, every
    completed experiment (and exhausted failure) is persisted atomically
    to JSON, and a rerun pointing at the same file skips straight past
    them — so a killed sweep resumes instead of restarting.  Results come
    back in ``names`` order; experiments that exhausted their retries are
    reported as :class:`ExperimentFailure` records, never as exceptions.

    ``workers``/``backend`` fan the pending experiments out through
    :func:`repro.parallel.parallel_map` (``backend="serial"`` or
    ``workers=1`` keeps the historical sequential loop; the parallel
    path uses real ``time.sleep`` for backoff and returns results that
    are render-identical to the sequential ones, like checkpoint
    resume).  ``cache_dir`` adds a content-addressed result cache keyed
    by graph digest + experiment id + config + code version: warm
    entries skip execution entirely and count as completed.

    ``ledger`` (a :class:`~repro.obs.ledger.Ledger` or a path) appends
    one :class:`~repro.obs.ledger.RunRecord` per freshly-executed
    experiment — cache hits and checkpoint resumes are *not* re-recorded,
    so ledger history stays one record per real run.
    """
    _ensure_loaded()
    if retries < 0:
        raise ReproError(f"retries must be >= 0, got {retries}")
    if timeout is not None and timeout <= 0:
        raise ReproError(f"timeout must be positive, got {timeout}")
    if backend not in BACKENDS:
        raise ReproError(f"unknown backend {backend!r}; choose from {BACKENDS}")
    if workers < 1:
        raise ReproError(f"workers must be >= 1, got {workers}")
    config = config or ExperimentConfig()
    checkpoint_path = Path(checkpoint) if checkpoint is not None else None
    completed: dict[str, dict] = {}
    failures: list[ExperimentFailure] = []
    failed_ids: set[str] = set()
    resumed: list[str] = []
    if checkpoint_path is not None and checkpoint_path.exists():
        state = _load_checkpoint(checkpoint_path, config)
        completed = dict(state.get("completed", {}))
        failures = [
            ExperimentFailure.from_dict(f) for f in state.get("failures", [])
        ]
        failed_ids = {f.experiment_id for f in failures}
        resumed = [n for n in names if n in completed or n in failed_ids]
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    cache_digest = config.graph().digest() if cache is not None else ""
    cache_params = _experiment_cache_params(config) if cache is not None else {}
    if ledger is not None and not isinstance(ledger, Ledger):
        ledger = Ledger(ledger)

    results: dict[str, ExperimentResult] = {}
    pending: list[str] = []
    for name in dict.fromkeys(names):
        if name in failed_ids:
            continue
        if name in completed:
            results[name] = result_from_dict(completed[name])
            continue
        if cache is not None:
            hit = cache.get(
                graph_digest=cache_digest,
                algorithm=f"{_EXPERIMENT_CACHE_TAG}:{name}",
                params=cache_params,
            )
            if hit is not None:
                results[name] = result_from_dict(hit)
                completed[name] = hit
                continue
        pending.append(name)
    if checkpoint_path is not None and (completed or failures):
        _write_checkpoint(checkpoint_path, config, completed, failures)

    def record_success(
        name: str, outcome: ExperimentResult, elapsed: float | None = None
    ) -> None:
        results[name] = outcome
        as_dict = result_to_dict(outcome)
        completed[name] = as_dict
        if cache is not None:
            cache.put(
                as_dict,
                graph_digest=cache_digest,
                algorithm=f"{_EXPERIMENT_CACHE_TAG}:{name}",
                params=cache_params,
            )
        if ledger is not None:
            try:
                ledger.append(
                    record_from_result(outcome, config, elapsed=elapsed)
                )
            except OSError as exc:
                _log.warning(
                    "ledger append failed",
                    extra={"experiment": name, "error": str(exc)},
                )

    if workers > 1 and backend != "serial" and pending:
        tasks = [
            (name, config, retries, timeout, backoff_base, backoff_cap, seed)
            for name in pending
        ]
        wave = parallel_map(
            _batch_task,
            tasks,
            backend=backend,
            workers=workers,
            chunk_size=1,
            capture_errors=True,
        )
        for name, outcome, task_failure in zip(
            pending, wave.results, _failures_by_index(wave, len(pending))
        ):
            if task_failure is not None:
                failures.append(
                    ExperimentFailure(
                        experiment_id=name,
                        attempts=retries + 1,
                        error_type=task_failure.error_type,
                        message=task_failure.message,
                        elapsed=0.0,
                    )
                )
                failed_ids.add(name)
                continue
            status, payload, elapsed = outcome
            if status == "ok":
                record_success(name, result_from_dict(payload), elapsed)
            else:
                failures.append(ExperimentFailure.from_dict(payload))
                failed_ids.add(name)
        if checkpoint_path is not None:
            _write_checkpoint(checkpoint_path, config, completed, failures)
    else:
        for name in pending:
            outcome, failure, elapsed = _attempt_experiment(
                name,
                config,
                retries=retries,
                timeout=timeout,
                backoff_base=backoff_base,
                backoff_cap=backoff_cap,
                seed=seed,
                sleep=sleep,
            )
            if failure is not None:
                failures.append(failure)
                failed_ids.add(name)
            else:
                assert outcome is not None
                record_success(name, outcome, elapsed)
            if checkpoint_path is not None:
                _write_checkpoint(checkpoint_path, config, completed, failures)
    ordered = [results[n] for n in dict.fromkeys(names) if n in results]
    batch_failures = [f for f in failures if f.experiment_id in set(names)]
    return BatchResult(
        results=ordered, failures=batch_failures, resumed=tuple(resumed)
    )


def _failures_by_index(wave, count: int) -> list:
    """Spread a ``ParallelResult``'s failures back onto task indices."""
    by_index = {f.index: f for f in wave.failures}
    return [by_index.get(i) for i in range(count)]
