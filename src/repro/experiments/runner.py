"""Experiment registry, result container, and the hardened batch runner.

Each experiment module registers a callable ``ExperimentConfig ->
ExperimentResult``; the CLI and the benchmark suite look experiments up
by their paper artifact id (``"table1"``, ``"fig5b"``, ...).

:func:`run_experiment_batch` is the fault-tolerant entry point for
multi-experiment sweeps: per-experiment retry with exponential backoff
(jitter drawn from a seeded RNG, so a retried batch is reproducible),
per-experiment wall-clock timeouts, JSON checkpoint/resume so a killed
sweep continues where it stopped, and structured
:class:`ExperimentFailure` records so one broken experiment degrades the
batch gracefully instead of aborting it.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from repro.exceptions import CheckpointError, ExperimentTimeoutError, ReproError
from repro.experiments.config import ExperimentConfig
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.tables import format_table


@dataclass(frozen=True)
class ExperimentResult:
    """Uniform output of every experiment.

    ``rows``/``headers`` hold the regenerated table; ``paper_values``
    (when applicable) maps row keys to the number the paper reports so
    EXPERIMENTS.md can show paper-vs-measured side by side.
    """

    experiment_id: str
    title: str
    headers: Sequence[str]
    rows: list[Sequence[object]]
    notes: str = ""
    paper_values: dict = field(default_factory=dict)

    def render(self) -> str:
        """ASCII rendering for the CLI / bench output."""
        text = format_table(self.headers, self.rows, title=self.title)
        if self.notes:
            text += f"\n  note: {self.notes}"
        return text


_REGISTRY: dict[str, Callable[[ExperimentConfig], ExperimentResult]] = {}


def register(name: str):
    """Decorator adding an experiment function to the registry."""

    def deco(fn: Callable[[ExperimentConfig], ExperimentResult]):
        if name in _REGISTRY:
            raise ReproError(f"duplicate experiment registration: {name}")
        _REGISTRY[name] = fn
        return fn

    return deco


def _ensure_loaded() -> None:
    # Experiment modules self-register on import.
    from repro.experiments import (  # noqa: F401
        ablations,
        dynamics,
        economics,
        extensions,
        fig1,
        fig2,
        fig3,
        fig4,
        fig5,
        resilience,
        table1,
        table2,
        table3,
        table4,
        table5,
    )


def list_experiments() -> list[str]:
    """All registered experiment ids, sorted."""
    _ensure_loaded()
    return sorted(_REGISTRY)


def run_experiment(
    name: str, config: ExperimentConfig | None = None
) -> ExperimentResult:
    """Run one experiment by id."""
    _ensure_loaded()
    if name not in _REGISTRY:
        raise ReproError(
            f"unknown experiment {name!r}; available: {sorted(_REGISTRY)}"
        )
    return _REGISTRY[name](config or ExperimentConfig())


# ----------------------------------------------------------------------
# Hardened batch execution
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ExperimentFailure:
    """Structured record of one experiment that exhausted its retries."""

    experiment_id: str
    attempts: int
    error_type: str
    message: str
    elapsed: float

    def as_dict(self) -> dict:
        return {
            "experiment_id": self.experiment_id,
            "attempts": self.attempts,
            "error_type": self.error_type,
            "message": self.message,
            "elapsed": self.elapsed,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentFailure":
        return cls(
            experiment_id=str(data["experiment_id"]),
            attempts=int(data["attempts"]),
            error_type=str(data["error_type"]),
            message=str(data["message"]),
            elapsed=float(data["elapsed"]),
        )


@dataclass(frozen=True)
class BatchResult:
    """Outcome of a hardened multi-experiment run."""

    results: list[ExperimentResult]
    failures: list[ExperimentFailure]
    resumed: tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.failures


def _jsonify(value):
    """Coerce numpy scalars/arrays and tuples into JSON-safe values.

    Arbitrary objects (e.g. a ``DatasetSummary`` stuffed into
    ``paper_values``) degrade to dicts or strings — the rendered table
    only depends on ``headers``/``rows``, so this is lossless where the
    resume-equivalence guarantee needs it to be.
    """
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return [_jsonify(v) for v in value.tolist()]
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonify(v) for k, v in value.items()}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _jsonify(dataclasses.asdict(value))
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


def result_to_dict(result: ExperimentResult) -> dict:
    """JSON-normalized form of an :class:`ExperimentResult`.

    Round-tripping through this form stringifies ``paper_values`` keys
    and turns row tuples into lists — the *rendered* table is identical,
    which is what checkpoint/resume equivalence is defined over.
    """
    return {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "headers": _jsonify(list(result.headers)),
        "rows": _jsonify(result.rows),
        "notes": result.notes,
        "paper_values": _jsonify(result.paper_values),
    }


def result_from_dict(data: dict) -> ExperimentResult:
    return ExperimentResult(
        experiment_id=str(data["experiment_id"]),
        title=str(data["title"]),
        headers=list(data["headers"]),
        rows=[tuple(row) for row in data["rows"]],
        notes=str(data.get("notes", "")),
        paper_values=dict(data.get("paper_values", {})),
    )


_CHECKPOINT_VERSION = 1


def _load_checkpoint(path: Path, config: ExperimentConfig) -> dict:
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"unreadable checkpoint {path}: {exc}") from exc
    if data.get("version") != _CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint {path} has version {data.get('version')!r}, "
            f"expected {_CHECKPOINT_VERSION}"
        )
    if data.get("scale") != config.scale or data.get("seed") != config.seed:
        raise CheckpointError(
            f"checkpoint {path} was written for scale={data.get('scale')!r} "
            f"seed={data.get('seed')!r}, not scale={config.scale!r} "
            f"seed={config.seed!r}"
        )
    return data


def _write_checkpoint(
    path: Path,
    config: ExperimentConfig,
    completed: dict[str, dict],
    failures: list[ExperimentFailure],
) -> None:
    """Atomic write (tmp file + rename) so a kill never corrupts it."""
    payload = {
        "version": _CHECKPOINT_VERSION,
        "scale": config.scale,
        "seed": config.seed,
        "completed": completed,
        "failures": [f.as_dict() for f in failures],
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=str(path.parent), prefix=path.name, suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle)
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


def _run_with_timeout(
    fn: Callable[[ExperimentConfig], ExperimentResult],
    config: ExperimentConfig,
    timeout: float | None,
    name: str,
) -> ExperimentResult:
    if timeout is None:
        return fn(config)
    executor = concurrent.futures.ThreadPoolExecutor(max_workers=1)
    future = executor.submit(fn, config)
    try:
        return future.result(timeout=timeout)
    except concurrent.futures.TimeoutError:
        # The worker thread cannot be killed; it is orphaned (daemonized
        # via non-waiting shutdown) and its eventual result discarded.
        future.cancel()
        raise ExperimentTimeoutError(
            f"experiment {name!r} exceeded {timeout:g}s wall-clock budget"
        ) from None
    finally:
        executor.shutdown(wait=False, cancel_futures=True)


def backoff_delays(
    retries: int, *, base: float, cap: float, seed: SeedLike
) -> list[float]:
    """Exponential backoff schedule with deterministic jitter.

    Delay before retry ``i`` (1-based) is ``min(cap, base · 2^(i−1))``
    scaled by a jitter factor in ``[1, 2)`` drawn from the seeded RNG, so
    the whole retry timeline of a batch is reproducible.
    """
    rng = ensure_rng(seed)
    return [
        min(cap, base * (2.0 ** i)) * (1.0 + float(rng.random()))
        for i in range(retries)
    ]


def run_experiment_batch(
    names: Sequence[str],
    config: ExperimentConfig | None = None,
    *,
    retries: int = 0,
    timeout: float | None = None,
    checkpoint: str | Path | None = None,
    backoff_base: float = 0.1,
    backoff_cap: float = 30.0,
    seed: SeedLike = 0,
    sleep: Callable[[float], None] = time.sleep,
) -> BatchResult:
    """Run many experiments, surviving per-experiment failures.

    Each experiment gets ``1 + retries`` attempts; failed attempts back
    off exponentially with deterministic jitter (``seed``).  ``timeout``
    bounds each attempt's wall-clock seconds.  With ``checkpoint``, every
    completed experiment (and exhausted failure) is persisted atomically
    to JSON, and a rerun pointing at the same file skips straight past
    them — so a killed sweep resumes instead of restarting.  Results come
    back in ``names`` order; experiments that exhausted their retries are
    reported as :class:`ExperimentFailure` records, never as exceptions.
    """
    _ensure_loaded()
    if retries < 0:
        raise ReproError(f"retries must be >= 0, got {retries}")
    if timeout is not None and timeout <= 0:
        raise ReproError(f"timeout must be positive, got {timeout}")
    config = config or ExperimentConfig()
    checkpoint_path = Path(checkpoint) if checkpoint is not None else None
    completed: dict[str, dict] = {}
    failures: list[ExperimentFailure] = []
    failed_ids: set[str] = set()
    resumed: list[str] = []
    if checkpoint_path is not None and checkpoint_path.exists():
        state = _load_checkpoint(checkpoint_path, config)
        completed = dict(state.get("completed", {}))
        failures = [
            ExperimentFailure.from_dict(f) for f in state.get("failures", [])
        ]
        failed_ids = {f.experiment_id for f in failures}
        resumed = [n for n in names if n in completed or n in failed_ids]
    results: dict[str, ExperimentResult] = {}
    for name in names:
        if name in results or name in failed_ids:
            continue  # duplicate in `names`, or already failed pre-resume
        if name in completed:
            results[name] = result_from_dict(completed[name])
            continue
        fn = _REGISTRY.get(name)
        delays = backoff_delays(
            retries, base=backoff_base, cap=backoff_cap, seed=seed
        )
        elapsed_total = 0.0
        last_error: Exception | None = None
        for attempt in range(1, retries + 2):
            start = time.perf_counter()
            try:
                if fn is None:
                    raise ReproError(
                        f"unknown experiment {name!r}; "
                        f"available: {sorted(_REGISTRY)}"
                    )
                outcome = _run_with_timeout(fn, config, timeout, name)
            except Exception as exc:  # noqa: BLE001 — graceful degradation
                elapsed_total += time.perf_counter() - start
                last_error = exc
                if attempt <= retries:
                    delay = delays[attempt - 1]
                    if delay > 0:
                        sleep(delay)
                continue
            elapsed_total += time.perf_counter() - start
            results[name] = outcome
            completed[name] = result_to_dict(outcome)
            last_error = None
            break
        if last_error is not None:
            failures.append(
                ExperimentFailure(
                    experiment_id=name,
                    attempts=retries + 1,
                    error_type=type(last_error).__name__,
                    message=str(last_error),
                    elapsed=elapsed_total,
                )
            )
            failed_ids.add(name)
        if checkpoint_path is not None:
            _write_checkpoint(checkpoint_path, config, completed, failures)
    ordered = [results[n] for n in dict.fromkeys(names) if n in results]
    batch_failures = [f for f in failures if f.experiment_id in set(names)]
    return BatchResult(
        results=ordered, failures=batch_failures, resumed=tuple(resumed)
    )
