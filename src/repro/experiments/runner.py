"""Experiment registry and the common result container.

Each experiment module registers a callable ``ExperimentConfig ->
ExperimentResult``; the CLI and the benchmark suite look experiments up
by their paper artifact id (``"table1"``, ``"fig5b"``, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.exceptions import ReproError
from repro.experiments.config import ExperimentConfig
from repro.utils.tables import format_table


@dataclass(frozen=True)
class ExperimentResult:
    """Uniform output of every experiment.

    ``rows``/``headers`` hold the regenerated table; ``paper_values``
    (when applicable) maps row keys to the number the paper reports so
    EXPERIMENTS.md can show paper-vs-measured side by side.
    """

    experiment_id: str
    title: str
    headers: Sequence[str]
    rows: list[Sequence[object]]
    notes: str = ""
    paper_values: dict = field(default_factory=dict)

    def render(self) -> str:
        """ASCII rendering for the CLI / bench output."""
        text = format_table(self.headers, self.rows, title=self.title)
        if self.notes:
            text += f"\n  note: {self.notes}"
        return text


_REGISTRY: dict[str, Callable[[ExperimentConfig], ExperimentResult]] = {}


def register(name: str):
    """Decorator adding an experiment function to the registry."""

    def deco(fn: Callable[[ExperimentConfig], ExperimentResult]):
        if name in _REGISTRY:
            raise ReproError(f"duplicate experiment registration: {name}")
        _REGISTRY[name] = fn
        return fn

    return deco


def _ensure_loaded() -> None:
    # Experiment modules self-register on import.
    from repro.experiments import (  # noqa: F401
        ablations,
        dynamics,
        economics,
        extensions,
        fig1,
        fig2,
        fig3,
        fig4,
        fig5,
        table1,
        table2,
        table3,
        table4,
        table5,
    )


def list_experiments() -> list[str]:
    """All registered experiment ids, sorted."""
    _ensure_loaded()
    return sorted(_REGISTRY)


def run_experiment(
    name: str, config: ExperimentConfig | None = None
) -> ExperimentResult:
    """Run one experiment by id."""
    _ensure_loaded()
    if name not in _REGISTRY:
        raise ReproError(
            f"unknown experiment {name!r}; available: {sorted(_REGISTRY)}"
        )
    return _REGISTRY[name](config or ExperimentConfig())
