"""Section 7 experiments: bargaining, Stackelberg pricing, Shapley split.

Three registered experiments:

* ``econ_bargaining`` — employee price and utilities across broker prices
  and (alpha, beta) bounds (Theorem 5), including the feasibility frontier
  ``p_B > h·c``.
* ``econ_stackelberg`` — equilibrium price/adoption for heterogeneous
  customer populations, with and without high-tier ISPs inside the
  coalition (the paper's "lower-tier ISPs become more willing" claim is
  evaluated at a *common* price so the comparison is apples-to-apples).
* ``econ_shapley`` — revenue split over the first greedy brokers of the
  topology with the coverage-profit characteristic function; verifies
  individual rationality and core membership (Theorems 7, 8) and reports
  the Monte Carlo estimation error against the exact values.
"""

from __future__ import annotations

import numpy as np

from repro.core.greedy import lazy_greedy_max_coverage
from repro.core.connectivity import saturated_connectivity
from repro.economics.bargaining import nash_bargaining, worst_case_hires
from repro.economics.coalition import (
    CoverageProfitGame,
    is_superadditive,
    is_supermodular,
    shapley_in_core,
)
from repro.economics.shapley import (
    efficiency_gap,
    exact_shapley,
    monte_carlo_shapley,
)
from repro.economics.stackelberg import StackelbergGame, tiered_customer_population
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentResult, register


@register("econ_bargaining")
def run_bargaining(config: ExperimentConfig) -> ExperimentResult:
    routing_cost = 0.05
    rows = []
    values = {}
    for beta in (2, 4, 6):
        h = worst_case_hires(beta)
        for p_b in (0.05, 0.2, 0.5, 1.0):
            outcome = nash_bargaining(p_b, routing_cost, beta=beta)
            rows.append(
                (
                    beta,
                    h,
                    f"{p_b:.2f}",
                    f"{outcome.employee_price:.3f}",
                    f"{outcome.employee_utility:.3f}",
                    f"{outcome.coalition_utility:.3f}",
                    "yes" if outcome.feasible else "no",
                )
            )
            values[(beta, p_b)] = outcome
    return ExperimentResult(
        experiment_id="econ_bargaining",
        title=f"Nash bargaining (Thm 5): employee price, c={routing_cost}",
        headers=["beta", "h", "p_B", "p_j*", "u_j", "u_B", "feasible"],
        rows=rows,
        paper_values=values,
        notes="Closed form p_j* = p_B/h; infeasible when p_B <= h*c.",
    )


@register("econ_stackelberg")
def run_stackelberg(config: ExperimentConfig) -> ExperimentResult:
    population = 60
    with_high = tiered_customer_population(
        population, broker_includes_high_tier=True, seed=config.seed
    )
    without_high = tiered_customer_population(
        population, broker_includes_high_tier=False, seed=config.seed
    )
    game_with = StackelbergGame(with_high, beta=config.beta)
    game_without = StackelbergGame(without_high, beta=config.beta)
    eq_with = game_with.solve()
    eq_without = game_without.solve()

    # Fixed-price willingness comparison (the paper's qualitative claim).
    common_price = 0.5 * (eq_with.price + eq_without.price)
    low_with = np.mean(
        [c.best_response(common_price) for c in with_high if c.name.startswith("low")]
    )
    low_without = np.mean(
        [
            c.best_response(common_price)
            for c in without_high
            if c.name.startswith("low")
        ]
    )
    rows = [
        (
            "high-tier ISPs in B",
            f"{eq_with.price:.3f}",
            f"{eq_with.total_adoption / population:.3f}",
            f"{eq_with.coalition_utility:.2f}",
            f"{low_with:.3f}",
        ),
        (
            "high-tier ISPs outside B",
            f"{eq_without.price:.3f}",
            f"{eq_without.total_adoption / population:.3f}",
            f"{eq_without.coalition_utility:.2f}",
            f"{low_without:.3f}",
        ),
    ]
    return ExperimentResult(
        experiment_id="econ_stackelberg",
        title="Stackelberg equilibrium (Thm 6) and the high-tier effect",
        headers=[
            "Scenario",
            "p_B*",
            "mean adoption",
            "u_B",
            f"low-tier adoption @ p={common_price:.2f}",
        ],
        rows=rows,
        paper_values={
            "with": eq_with,
            "without": eq_without,
            "low_tier_gain": float(low_with - low_without),
        },
        notes="Paper: including high-tier ISPs in B makes lower tiers more "
        "willing to adopt (last column compares at a common price).",
    )


@register("econ_shapley")
def run_shapley(config: ExperimentConfig) -> ExperimentResult:
    graph = config.graph()
    players = lazy_greedy_max_coverage(graph, 8)
    best_single = max(saturated_connectivity(graph, [j]) for j in players)
    cf = CoverageProfitGame(
        graph,
        revenue=100.0,
        member_cost=0.2,
        connectivity_threshold=min(best_single + 0.15, 0.9),
    )
    exact = exact_shapley(cf, players)
    mc = monte_carlo_shapley(cf, players, num_permutations=400, seed=config.seed)
    rows = []
    for j in players:
        rows.append(
            (
                graph.name_of(j),
                f"{exact[j]:.3f}",
                f"{mc.values[j]:.3f}",
                f"{mc.standard_errors[j]:.3f}",
                f"{cf(frozenset([j])):.3f}",
            )
        )
    superadd = is_superadditive(cf, players)
    supermod = is_supermodular(cf, players[:6])
    in_core = shapley_in_core(exact, cf)
    rational = all(exact[j] >= cf(frozenset([j])) - 1e-9 for j in players)
    rows.append(
        (
            "properties",
            f"superadditive={superadd}",
            f"supermodular={supermod}",
            f"IR={rational}",
            f"core={in_core}",
        )
    )
    return ExperimentResult(
        experiment_id="econ_shapley",
        title=f"Shapley revenue split over {len(players)} greedy brokers",
        headers=["Broker", "phi (exact)", "phi (MC)", "MC stderr", "U({j})"],
        rows=rows,
        paper_values={
            "exact": exact,
            "mc": mc,
            "efficiency_gap": efficiency_gap(exact, cf),
            "superadditive": superadd,
            "supermodular": supermod,
            "individually_rational": rational,
            "in_core": in_core,
        },
        notes="Thm 7: superadditivity -> individual rationality; "
        "Thm 8: supermodularity -> Shapley in the core.",
    )
