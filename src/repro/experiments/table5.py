"""Table 5 — who the top brokers are: ranking and service categories.

The paper lists the highest-ranked members of the 3,540-alliance —
dominated by IXPs (Equinix, LINX, DE-CIX) and large transit/access
networks (Level3, Cogent, AT&T, Hurricane), with content and enterprise
ASes appearing further down.  We regenerate the ranking (selection order
= importance) with each broker's category and degree.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.core.connectivity import saturated_connectivity
from repro.core.coverage import coverage_fraction
from repro.core.maxsg import maxsg
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentResult, register
from repro.experiments.sweeps import (
    SweepResult,
    jsonify_cell,
    run_graph_tasks,
    worker_graph,
)
from repro.parallel.cache import ResultCache
from repro.types import BusinessCategory


@register("table5")
def run(config: ExperimentConfig) -> ExperimentResult:
    graph = config.graph()
    budget = config.broker_budgets()["6.8%"]
    brokers = maxsg(graph, budget)
    degrees = graph.degrees()

    rows = []
    for rank, b in enumerate(brokers[:15], start=1):
        rows.append(
            (
                rank,
                BusinessCategory(int(graph.categories[b])).name,
                graph.name_of(b),
                int(degrees[b]),
            )
        )

    # Category histogram over the whole alliance (Fig. 5a's composition).
    cats = graph.categories[np.asarray(brokers)]
    histogram = {
        cat.name: int(np.count_nonzero(cats == int(cat)))
        for cat in BusinessCategory
    }
    top10 = brokers[: max(len(brokers) // 10, 1)]
    ixp_in_top = float(
        np.mean(graph.categories[np.asarray(top10)] == int(BusinessCategory.IXP))
    )
    return ExperimentResult(
        experiment_id="table5",
        title=f"Table 5: top-ranked brokers of the {len(brokers)}-alliance",
        headers=["Rank", "Type", "Name", "Degree"],
        rows=rows,
        paper_values={
            "composition": histogram,
            "ixp_fraction_in_top_decile": ixp_in_top,
            "alliance_size": len(brokers),
        },
        notes=(
            "Paper's top ranks mix IXPs and transit/access ISPs; composition "
            f"here: {histogram}."
        ),
    )


# ----------------------------------------------------------------------
# Table 5-style ranking sweep across broker budgets
# ----------------------------------------------------------------------

#: Cache tag for one budget cell of the ranking sweep.
TABLE5_CELL_TAG = "table5-cell"


def _table5_cell(task: dict) -> dict:
    """One budget's ranking/composition/evaluation cell (worker side)."""
    graph = worker_graph()
    brokers = task["brokers"]
    degrees = graph.degrees()
    cats = graph.categories[np.asarray(brokers)]
    composition = {
        cat.name: int(np.count_nonzero(cats == int(cat)))
        for cat in BusinessCategory
    }
    top10 = brokers[: max(len(brokers) // 10, 1)]
    ixp_in_top = float(
        np.mean(graph.categories[np.asarray(top10)] == int(BusinessCategory.IXP))
    )
    top_rows = [
        [
            rank,
            BusinessCategory(int(graph.categories[b])).name,
            graph.name_of(b),
            int(degrees[b]),
        ]
        for rank, b in enumerate(brokers[: task["top"]], start=1)
    ]
    return {
        "alliance_size": len(brokers),
        "coverage_fraction": float(coverage_fraction(graph, brokers)),
        "saturated_connectivity": float(saturated_connectivity(graph, brokers)),
        "composition": composition,
        "ixp_fraction_in_top_decile": ixp_in_top,
        "top": top_rows,
    }


def table5_budget_sweep(
    config: ExperimentConfig,
    *,
    budgets: list[int] | None = None,
    top: int = 10,
    workers: int = 1,
    backend: str = "serial",
    cache_dir: str | Path | None = None,
    chunk_size: int | None = None,
) -> SweepResult:
    """Table 5's ranking regenerated at many broker budgets.

    Like :func:`repro.experiments.fig2.fig2b_seed_sweep`, one MaxSG run
    at the largest budget yields every prefix; each budget's evaluation
    (coverage, saturated connectivity, composition, top ranks) is an
    independent cell dispatched through the executor + cache.
    """
    graph = config.graph()
    if budgets is None:
        budgets = sorted(config.broker_budgets().values())
    else:
        budgets = sorted(dict.fromkeys(int(b) for b in budgets))
    brokers_full = maxsg(graph, max(budgets))
    digest = graph.digest()
    cache = ResultCache(cache_dir) if cache_dir is not None else None

    cells: dict[int, dict] = {}
    tasks: list[dict] = []
    for b in budgets:
        params = {"budget": b, "top": top, "algorithm": "maxsg-prefix"}
        if cache is not None:
            hit = cache.get(
                graph_digest=digest, algorithm=TABLE5_CELL_TAG, params=params
            )
            if hit is not None:
                cells[b] = hit
                continue
        tasks.append(
            {
                "budget": b,
                "top": top,
                "brokers": brokers_full[: min(b, len(brokers_full))],
                "params": params,
            }
        )
    computed = run_graph_tasks(
        graph,
        _table5_cell,
        tasks,
        backend=backend,
        workers=workers,
        chunk_size=chunk_size,
    ).values()
    for task, cell in zip(tasks, computed):
        if cache is not None:
            cell = cache.put(
                cell,
                graph_digest=digest,
                algorithm=TABLE5_CELL_TAG,
                params=task["params"],
            )
        else:
            cell = jsonify_cell(cell)
        cells[task["budget"]] = cell

    payload = {
        "sweep": "table5",
        "scale": config.scale,
        "graph_seed": config.seed,
        "graph_digest": digest,
        "algorithm": "maxsg-prefix",
        "top": top,
        "budgets": budgets,
        "cells": [{"budget": b, **cells[b]} for b in budgets],
    }
    return SweepResult(
        payload=payload,
        cache_hits=cache.hits if cache is not None else 0,
        cache_misses=cache.misses if cache is not None else 0,
    )
