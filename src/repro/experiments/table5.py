"""Table 5 — who the top brokers are: ranking and service categories.

The paper lists the highest-ranked members of the 3,540-alliance —
dominated by IXPs (Equinix, LINX, DE-CIX) and large transit/access
networks (Level3, Cogent, AT&T, Hurricane), with content and enterprise
ASes appearing further down.  We regenerate the ranking (selection order
= importance) with each broker's category and degree.
"""

from __future__ import annotations

import numpy as np

from repro.core.maxsg import maxsg
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentResult, register
from repro.types import BusinessCategory


@register("table5")
def run(config: ExperimentConfig) -> ExperimentResult:
    graph = config.graph()
    budget = config.broker_budgets()["6.8%"]
    brokers = maxsg(graph, budget)
    degrees = graph.degrees()

    rows = []
    for rank, b in enumerate(brokers[:15], start=1):
        rows.append(
            (
                rank,
                BusinessCategory(int(graph.categories[b])).name,
                graph.name_of(b),
                int(degrees[b]),
            )
        )

    # Category histogram over the whole alliance (Fig. 5a's composition).
    cats = graph.categories[np.asarray(brokers)]
    histogram = {
        cat.name: int(np.count_nonzero(cats == int(cat)))
        for cat in BusinessCategory
    }
    top10 = brokers[: max(len(brokers) // 10, 1)]
    ixp_in_top = float(
        np.mean(graph.categories[np.asarray(top10)] == int(BusinessCategory.IXP))
    )
    return ExperimentResult(
        experiment_id="table5",
        title=f"Table 5: top-ranked brokers of the {len(brokers)}-alliance",
        headers=["Rank", "Type", "Name", "Degree"],
        rows=rows,
        paper_values={
            "composition": histogram,
            "ixp_fraction_in_top_decile": ixp_in_top,
            "alliance_size": len(brokers),
        },
        notes=(
            "Paper's top ranks mix IXPs and transit/access ISPs; composition "
            f"here: {histogram}."
        ),
    )
