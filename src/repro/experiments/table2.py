"""Table 2 — dataset summary of the (synthetic) AS/IXP topology."""

from __future__ import annotations

from repro.datasets.stats import summarize
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentResult, register

#: The paper's Table 2 for the full-scale 2014 dataset.
PAPER_TABLE2 = {
    "IXPs": 322,
    "ASes": 51_757,
    "Largest connected subgraph": 51_895,
    "AS-AS connections": 347_332,
    "IXP-AS connections": 55_282,
}


@register("table2")
def run(config: ExperimentConfig) -> ExperimentResult:
    graph = config.graph()
    summary = summarize(graph, estimate_short_paths=True, seed=config.seed)
    factor = graph.num_nodes / (51_757 + 322)
    rows = [
        ("IXPs", summary.num_ixps, round(PAPER_TABLE2["IXPs"] * factor)),
        ("ASes", summary.num_ases, round(PAPER_TABLE2["ASes"] * factor)),
        (
            "Size of the maximum connected subgraph",
            summary.largest_component_size,
            round(PAPER_TABLE2["Largest connected subgraph"] * factor),
        ),
        (
            "# of connections among ASes",
            summary.as_as_edges,
            round(PAPER_TABLE2["AS-AS connections"] * factor),
        ),
        (
            "# of connections between IXPs and ASes",
            summary.ixp_as_edges,
            round(PAPER_TABLE2["IXP-AS connections"] * factor),
        ),
        (
            "Fraction of ASes attached to an IXP",
            f"{summary.ixp_attached_fraction:.3f}",
            "0.402",
        ),
        ("Average degree", f"{summary.average_degree:.2f}", "15.46"),
        (
            "(alpha, beta)",
            f"({summary.alpha:.3f}, {summary.beta})",
            "(0.99, 4)",
        ),
    ]
    return ExperimentResult(
        experiment_id="table2",
        title=f"Table 2: dataset summary (scale={config.scale})",
        headers=["Description", "Measured", "Paper (scaled)"],
        rows=rows,
        paper_values={"summary": summary},
        notes="Paper column scaled linearly to this profile's node count.",
    )
