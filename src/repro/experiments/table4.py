"""Table 4 — path inflation of the MaxSG alliance vs free routing.

The paper's observation: if the alliance's internal links are
bidirectional, the l-hop connectivity curve of the 3,540-alliance almost
overlaps the free "ASesWithIXPs" curve — the broker detour costs almost
nothing — whereas a same-size Degree-Based set inflates paths noticeably.
"""

from __future__ import annotations

from repro.core.baselines import degree_based
from repro.core.connectivity import connectivity_curve, path_inflation
from repro.core.maxsg import maxsg
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentResult, register


@register("table4")
def run(config: ExperimentConfig) -> ExperimentResult:
    graph = config.graph()
    budget = config.broker_budgets()["6.8%"]
    hops = list(range(1, config.max_hops + 1))

    free = connectivity_curve(
        graph, None, max_hops=config.max_hops,
        num_sources=config.num_sources, seed=config.seed,
    )
    alliance = maxsg(graph, budget)
    alliance_curve = connectivity_curve(
        graph, alliance, max_hops=config.max_hops,
        num_sources=config.num_sources, seed=config.seed,
    )
    db = degree_based(graph, budget)
    db_curve = connectivity_curve(
        graph, db, max_hops=config.max_hops,
        num_sources=config.num_sources, seed=config.seed,
    )

    def row(name, curve):
        cells = [name] + [f"{100 * curve.at(h):.2f}%" for h in hops]
        cells.append(f"{100 * curve.saturated:.2f}%")
        return tuple(cells)

    rows = [
        row("ASesWithIXPs (free)", free),
        row(f"MaxSG alliance (k={len(alliance)})", alliance_curve),
        row(f"Degree-Based (k={len(db)})", db_curve),
    ]
    inflation = path_inflation(free, alliance_curve)
    return ExperimentResult(
        experiment_id="table4",
        title="Table 4: path inflation via the alliance (bidirectional links)",
        headers=["Routing"] + [f"l={h}" for h in hops] + ["saturated"],
        rows=rows,
        paper_values={
            "free": free,
            "alliance": alliance_curve,
            "db": db_curve,
            "max_inflation": float(inflation.max(initial=0.0)),
        },
        notes=(
            "Paper: the alliance curve almost overlaps the free curve "
            f"(max per-hop inflation here: {100 * inflation.max(initial=0.0):.2f} pts)."
        ),
    )
