"""Experiment harness: one module per paper table/figure + ablations."""

from repro.experiments.config import ExperimentConfig, PAPER_BROKER_FRACTIONS
from repro.experiments.runner import (
    BatchResult,
    ExperimentFailure,
    ExperimentResult,
    list_experiments,
    run_experiment,
    run_experiment_batch,
)

__all__ = [
    "ExperimentConfig",
    "PAPER_BROKER_FRACTIONS",
    "ExperimentResult",
    "ExperimentFailure",
    "BatchResult",
    "run_experiment",
    "run_experiment_batch",
    "list_experiments",
]
