"""Experiment harness: one module per paper table/figure + ablations."""

from repro.experiments.config import ExperimentConfig, PAPER_BROKER_FRACTIONS
from repro.experiments.runner import ExperimentResult, list_experiments, run_experiment

__all__ = [
    "ExperimentConfig",
    "PAPER_BROKER_FRACTIONS",
    "ExperimentResult",
    "run_experiment",
    "list_experiments",
]
