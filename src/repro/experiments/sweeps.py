"""Shared plumbing for parallel, cache-aware experiment sweeps.

The seed/budget sweeps in :mod:`repro.experiments.fig2`,
:mod:`repro.experiments.table5` and :mod:`repro.resilience.replay` all
follow the same shape: one fixed topology, many independent cells, each
cell addressable in the result cache.  This module centralizes the three
pieces they share:

* the **worker graph slot** — process-backend workers attach the
  shared-memory graph once (pool initializer) and every task reads it
  from a module global instead of unpickling the topology per task;
* :func:`run_graph_tasks` — dispatch tasks through
  :func:`repro.parallel.parallel_map`, publishing the graph via
  :class:`repro.parallel.SharedGraphStore` only when a process pool
  actually needs it;
* :class:`SweepResult` + :func:`jsonify_cell` — every sweep returns a
  deterministic JSON-safe ``payload`` (bit-identical between cold,
  warm-cache and any-backend runs; the equivalence suite pins this)
  alongside cache hit/miss counters that are *not* part of the payload.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.graph.asgraph import ASGraph
from repro.obs.ledger import RunRecord, git_revision, now, summarize_observation
from repro.parallel.executor import ParallelResult, parallel_map
from repro.parallel.shm import AttachedGraph, SharedGraphHandle, SharedGraphStore

#: Graph visible to sweep workers; set directly (serial/thread) or by the
#: process-pool initializer (shared-memory attach).
_WORKER_GRAPH: ASGraph | None = None
#: Keeps the worker's attachment alive for the lifetime of the process.
_WORKER_ATTACHMENT: AttachedGraph | None = None


def set_worker_graph(graph: ASGraph | None) -> None:
    global _WORKER_GRAPH
    _WORKER_GRAPH = graph


def worker_graph() -> ASGraph:
    if _WORKER_GRAPH is None:
        raise RuntimeError(
            "sweep worker graph is not initialized; tasks must run through "
            "run_graph_tasks()"
        )
    return _WORKER_GRAPH


def _attach_worker_graph(handle: SharedGraphHandle) -> None:
    """Process-pool initializer: attach the shared graph zero-copy."""
    global _WORKER_ATTACHMENT
    _WORKER_ATTACHMENT = AttachedGraph(handle)
    set_worker_graph(_WORKER_ATTACHMENT.graph)


def run_graph_tasks(
    graph: ASGraph,
    fn: Callable,
    tasks: Sequence,
    *,
    backend: str = "serial",
    workers: int = 1,
    chunk_size: int | None = None,
    capture_errors: bool = False,
) -> ParallelResult:
    """Run graph-bound ``fn`` over ``tasks`` under the chosen backend.

    For the process backend the graph is published once through shared
    memory and attached by each worker's initializer; serial and thread
    backends share the caller's object directly.  ``fn`` reads the graph
    via :func:`worker_graph` so the tasks themselves stay small and
    picklable.
    """
    if backend == "process" and tasks:
        with SharedGraphStore(graph) as store:
            return parallel_map(
                fn,
                tasks,
                backend=backend,
                workers=workers,
                chunk_size=chunk_size,
                capture_errors=capture_errors,
                initializer=_attach_worker_graph,
                initargs=(store.handle,),
            )
    set_worker_graph(graph)
    return parallel_map(
        fn,
        tasks,
        backend=backend,
        workers=workers,
        chunk_size=chunk_size,
        capture_errors=capture_errors,
    )


def jsonify_cell(cell: dict) -> dict:
    """JSON round-trip a freshly computed cell.

    A warm cache hit comes back through JSON; round-tripping the cold
    path too makes cold and warm sweep payloads bit-identical.
    """
    return json.loads(json.dumps(cell))


@dataclass(frozen=True)
class SweepResult:
    """A sweep's deterministic payload plus its cache counters.

    ``payload`` is pure content — identical bytes for serial, thread,
    process, cold-cache and warm-cache runs of the same sweep.
    ``cache_hits``/``cache_misses`` describe *this* invocation and are
    deliberately kept out of the payload.
    """

    payload: dict
    cache_hits: int = 0
    cache_misses: int = 0

    def to_json(self, *, indent: int | None = None) -> str:
        """Canonical JSON of the payload (the bit-identity contract)."""
        return json.dumps(self.payload, sort_keys=True, indent=indent)


def record_from_sweep(
    name: str,
    sweep: SweepResult,
    *,
    graph: ASGraph | None = None,
    scale: str = "",
    seed: int = 0,
    params: dict | None = None,
    elapsed: float | None = None,
    algorithm: str | None = None,
) -> RunRecord:
    """The ledger :class:`~repro.obs.ledger.RunRecord` for one sweep run.

    Because the payload is bit-identical across backends and cache
    states, its SHA-256 is a strong ``result_digest``: any backend- or
    cache-dependent drift trips the exact regression gate.  Cache
    hit/miss counts land in ``counters`` (they describe the run, not the
    content).

    ``algorithm`` names a registered selection algorithm; the record then
    embeds its canonical descriptor (name + defaulted parameters) from
    :mod:`repro.core.registry`, so ledger rows stay comparable even when
    an algorithm grows new knobs.
    """
    merged = dict(params or {})
    if algorithm is not None:
        from repro.core.registry import canonical_params, get_algorithm

        spec = get_algorithm(algorithm)
        merged["algorithm"] = {
            "name": spec.name,
            "params": canonical_params(algorithm),
            "capabilities": list(spec.capabilities),
        }
    return RunRecord(
        experiment=name,
        kind="sweep",
        scale=scale,
        seed=seed,
        git_rev=git_revision(),
        graph_digest=graph.digest() if graph is not None else "",
        params=merged,
        counters={
            "sweep.cache_hits": sweep.cache_hits,
            "sweep.cache_misses": sweep.cache_misses,
        },
        timings=(
            {"experiment.seconds": summarize_observation(elapsed)}
            if elapsed is not None
            else {}
        ),
        result_digest=hashlib.sha256(sweep.to_json().encode()).hexdigest(),
        ts=now(),
    )
