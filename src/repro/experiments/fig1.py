"""Fig. 1 — the layered structure of the AS/IXP topology.

The paper's visualization shows a scale-free, layered disc with IXPs at
both the core and the edge.  We regenerate its quantitative content: the
k-core-based radial layout plus per-class radial profiles showing (a) the
graph is strongly layered (tier-1 < transit < stub radii) and (b) IXPs
appear across the whole radial range.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentResult, register
from repro.graph.layout import radial_layout, radial_profile
from repro.types import Tier


@register("fig1")
def run(config: ExperimentConfig) -> ExperimentResult:
    graph = config.graph()
    layout = radial_layout(graph, seed=config.seed)

    groups = {
        "Tier-1 ASes": np.flatnonzero(graph.tiers == int(Tier.TIER1)),
        "Transit ASes": np.flatnonzero(graph.tiers == int(Tier.TRANSIT)),
        "Stub ASes": np.flatnonzero(
            (graph.tiers == int(Tier.STUB)) & ~graph.ixp_mask()
        ),
        "IXPs": graph.ixp_ids(),
    }
    rows = []
    profiles = {}
    for name, nodes in groups.items():
        profile = radial_profile(layout, nodes)
        profiles[name] = profile
        rows.append(
            (
                name,
                len(nodes),
                f"{profile.mean_radius:.3f}",
                f"{100 * profile.core_fraction:.1f}%",
                f"{100 * profile.edge_fraction:.1f}%",
            )
        )
    return ExperimentResult(
        experiment_id="fig1",
        title="Fig. 1: layered radial structure (radius 0 = network core)",
        headers=["Node class", "Count", "Mean radius", "In core", "At edge"],
        rows=rows,
        paper_values={"profiles": profiles, "layout": layout},
        notes="Paper: IXPs appear at both the core and the edge of the disc.",
    )
