"""Fig. 3 — why PageRank-based selection plateaus (the marginal effect).

The paper takes PRB broker sets of size 100 and 1,000, then measures, for
candidate next brokers, the correlation between their PageRank score and
the saturated-connectivity increase they would contribute.  The
correlation collapses (0.818 -> 0.227 in the paper) as the set grows:
high-PageRank nodes stop being the right next picks.
"""

from __future__ import annotations

import numpy as np

from repro.core.baselines import pagerank_based
from repro.core.connectivity import saturated_connectivity
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentResult, register
from repro.graph.metrics import pagerank
from repro.utils.rng import ensure_rng


def _gain_correlation(
    graph, base_brokers, scores, *, num_candidates: int, seed
) -> tuple[float, np.ndarray, np.ndarray]:
    rng = ensure_rng(seed)
    base = set(base_brokers)
    pool = np.array([v for v in range(graph.num_nodes) if v not in base])
    # Candidate mix: half weighted by PageRank (interesting nodes), half
    # uniform, so the correlation is measured across the score range.
    k = min(num_candidates, len(pool))
    weights = scores[pool] / scores[pool].sum()
    weighted = rng.choice(pool, size=k // 2, replace=False, p=weights)
    uniform = rng.choice(pool, size=k - k // 2, replace=False)
    candidates = np.unique(np.concatenate([weighted, uniform]))
    base_sat = saturated_connectivity(graph, list(base_brokers))
    gains = np.array(
        [
            saturated_connectivity(graph, list(base_brokers) + [int(c)]) - base_sat
            for c in candidates
        ]
    )
    cand_scores = scores[candidates]
    if np.isclose(gains.std(), 0.0) or np.isclose(cand_scores.std(), 0.0):
        corr = 0.0
    else:
        corr = float(np.corrcoef(cand_scores, gains)[0, 1])
    return corr, candidates, gains


@register("fig3")
def run(config: ExperimentConfig, *, num_candidates: int = 120) -> ExperimentResult:
    graph = config.graph()
    scores = pagerank(graph)
    budgets = config.broker_budgets()
    small_k = budgets["0.19%"]
    large_k = budgets["1.9%"]

    rows = []
    values = {}
    for label, k, paper_corr in (
        (f"|B| = {small_k}", small_k, 0.818),
        (f"|B| = {large_k}", large_k, 0.227),
    ):
        brokers = pagerank_based(graph, k)
        corr, candidates, gains = _gain_correlation(
            graph, brokers, scores, num_candidates=num_candidates, seed=config.seed
        )
        rows.append(
            (label, f"{corr:.3f}", f"{paper_corr:.3f}",
             f"{gains.max(initial=0.0):.5f}")
        )
        values[label] = {"corr": corr, "paper": paper_corr, "gains": gains}
    return ExperimentResult(
        experiment_id="fig3",
        title="Fig. 3: PageRank vs marginal-connectivity-gain correlation",
        headers=["PRB set", "Correlation", "Paper", "Max candidate gain"],
        rows=rows,
        paper_values=values,
        notes="Paper: correlation decays 0.818 -> 0.227 as |B| grows 100 -> 1000.",
    )
