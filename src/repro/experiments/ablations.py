"""Ablations for the design choices DESIGN.md calls out.

* ``ablation_approx_ratio`` — Algorithm 2 vs the exact MCBG optimum on
  small random graphs; the empirical ratio must respect (and in practice
  far exceed) the ``(1 − 1/e)/θ`` bound of Theorem 3.
* ``ablation_maxsg_vs_approx`` — the <0.5 %-coverage-gap claim of
  Section 5.1 plus wall-clock comparison.
* ``ablation_maxsg_seed`` — MaxSG sensitivity to the first vertex.
* ``ablation_lazy_greedy`` — lazy vs plain greedy: identical output,
  different cost.
* ``ablation_root_strategy`` — Algorithm 2's best-root loop vs first-root.
* ``ablation_sampling`` — connectivity estimator: sampled vs exact error.
* ``ablation_path_length`` — Problem 4's epsilon-feasibility (Eq. 4) per
  algorithm.
"""

from __future__ import annotations

import math
import time

from repro.core.approx_mcbg import approx_mcbg
from repro.core.baselines import degree_based
from repro.core.connectivity import connectivity_curve
from repro.core.coverage import coverage_value
from repro.core.exact import exact_mcbg
from repro.core.greedy import greedy_max_coverage, lazy_greedy_max_coverage
from repro.core.maxsg import maxsg
from repro.core.pathlength import evaluate_feasibility
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentResult, register
from repro.graph.generators import erdos_renyi
from repro.graph.paths import estimate_alpha_beta


@register("ablation_approx_ratio")
def run_approx_ratio(config: ExperimentConfig) -> ExperimentResult:
    rows = []
    worst = math.inf
    for seed in range(5):
        graph = erdos_renyi(14, 24, seed=seed)
        k = 4
        alpha, beta = estimate_alpha_beta(graph, alpha=0.9, num_sources=None)
        opt_brokers, opt_value = exact_mcbg(graph, k)
        apx = approx_mcbg(graph, k, beta=beta, mode="strict")
        apx_value = coverage_value(graph, apx.brokers)
        ratio = apx_value / opt_value if opt_value else 1.0
        theta = 2 * math.ceil(beta / 2)
        bound = (1 - math.exp(-1)) / theta
        worst = min(worst, ratio)
        rows.append(
            (seed, beta, opt_value, apx_value, f"{ratio:.3f}", f"{bound:.3f}")
        )
    return ExperimentResult(
        experiment_id="ablation_approx_ratio",
        title="Ablation: Algorithm 2 vs exact MCBG optimum (n=14 graphs)",
        headers=["seed", "beta", "OPT f(B)", "Alg2 f(B)", "ratio", "Thm-3 bound"],
        rows=rows,
        paper_values={"worst_ratio": worst},
        notes="Empirical ratios must stay above the theoretical bound.",
    )


@register("ablation_maxsg_vs_approx")
def run_maxsg_vs_approx(config: ExperimentConfig) -> ExperimentResult:
    graph = config.graph()
    rows = []
    values = {}
    for label, budget in config.broker_budgets().items():
        t0 = time.perf_counter()
        apx = approx_mcbg(graph, budget, beta=config.beta)
        t_apx = time.perf_counter() - t0
        t0 = time.perf_counter()
        msg = maxsg(graph, budget)
        t_msg = time.perf_counter() - t0
        cov_apx = coverage_value(graph, apx.brokers) / graph.num_nodes
        cov_msg = coverage_value(graph, msg) / graph.num_nodes
        gap = cov_apx - cov_msg
        rows.append(
            (
                label,
                budget,
                f"{100 * cov_apx:.2f}%",
                f"{100 * cov_msg:.2f}%",
                f"{100 * gap:+.2f} pts",
                f"{t_apx:.2f}s",
                f"{t_msg:.2f}s",
            )
        )
        values[label] = {"gap": gap, "t_approx": t_apx, "t_maxsg": t_msg}
    return ExperimentResult(
        experiment_id="ablation_maxsg_vs_approx",
        title="Ablation: MaxSG vs Algorithm 2 (coverage gap & runtime)",
        headers=["size", "k", "Approx cover", "MaxSG cover", "gap", "t(Approx)", "t(MaxSG)"],
        rows=rows,
        paper_values=values,
        notes="Paper: MaxSG sacrifices < 0.5% connectivity vs the approximation.",
    )


@register("ablation_maxsg_seed")
def run_maxsg_seed(config: ExperimentConfig) -> ExperimentResult:
    graph = config.graph()
    budget = config.broker_budgets()["1.9%"]
    baseline = maxsg(graph, budget)
    base_cov = coverage_value(graph, baseline) / graph.num_nodes
    rows = [("max-degree (default)", f"{100 * base_cov:.2f}%", "+0.00 pts")]
    spread = []
    for seed in range(5):
        brokers = maxsg(graph, budget, random_seed_vertex=True, rng_seed=seed)
        cov = coverage_value(graph, brokers) / graph.num_nodes
        spread.append(cov)
        rows.append(
            (f"random seed {seed}", f"{100 * cov:.2f}%",
             f"{100 * (cov - base_cov):+.2f} pts")
        )
    return ExperimentResult(
        experiment_id="ablation_maxsg_seed",
        title=f"Ablation: MaxSG first-vertex sensitivity (k={budget})",
        headers=["Seed vertex", "coverage", "delta vs default"],
        rows=rows,
        paper_values={"base": base_cov, "spread": spread},
        notes="The greedy region-growth makes the seed choice nearly irrelevant.",
    )


@register("ablation_lazy_greedy")
def run_lazy_greedy(config: ExperimentConfig) -> ExperimentResult:
    graph = config.graph()
    budget = config.broker_budgets()["1.9%"]
    t0 = time.perf_counter()
    lazy = lazy_greedy_max_coverage(graph, budget)
    t_lazy = time.perf_counter() - t0
    t0 = time.perf_counter()
    plain = greedy_max_coverage(graph, budget)
    t_plain = time.perf_counter() - t0
    rows = [
        ("lazy (CELF)", f"{t_lazy:.3f}s", len(lazy)),
        ("plain (Algorithm 1)", f"{t_plain:.3f}s", len(plain)),
        ("identical output", str(lazy == plain), "-"),
    ]
    return ExperimentResult(
        experiment_id="ablation_lazy_greedy",
        title=f"Ablation: lazy vs plain greedy (k={budget})",
        headers=["Variant", "wall-clock", "|B|"],
        rows=rows,
        paper_values={
            "identical": lazy == plain,
            "speedup": t_plain / max(t_lazy, 1e-9),
        },
    )


@register("ablation_root_strategy")
def run_root_strategy(config: ExperimentConfig) -> ExperimentResult:
    graph = config.graph()
    rows = []
    values = {}
    for label, budget in config.broker_budgets().items():
        best = approx_mcbg(graph, budget, beta=config.beta, root_strategy="best")
        first = approx_mcbg(graph, budget, beta=config.beta, root_strategy="first")
        rows.append(
            (label, budget, len(best.repair), len(first.repair),
             len(best.brokers), len(first.brokers))
        )
        values[label] = {"best": best, "first": first}
    return ExperimentResult(
        experiment_id="ablation_root_strategy",
        title="Ablation: Algorithm 2 root choice (best-root vs first-root)",
        headers=["size", "k", "repairs(best)", "repairs(first)", "|B|(best)", "|B|(first)"],
        rows=rows,
        paper_values=values,
        notes="The paper's min-over-roots loop buys smaller repair sets.",
    )


@register("ablation_sampling")
def run_sampling(config: ExperimentConfig) -> ExperimentResult:
    graph = config.graph()
    budget = config.broker_budgets()["1.9%"]
    brokers = degree_based(graph, budget)
    exact = connectivity_curve(graph, brokers, max_hops=4, num_sources=None)
    rows = [("exact", graph.num_nodes, f"{100 * exact.at(4):.3f}%", "-")]
    values = {"exact": exact}
    for sources in (100, 400, 1600):
        est = connectivity_curve(
            graph, brokers, max_hops=4, num_sources=sources, seed=config.seed
        )
        err = abs(est.at(4) - exact.at(4))
        rows.append(
            (f"sampled {sources}", sources, f"{100 * est.at(4):.3f}%",
             f"{100 * err:.3f} pts")
        )
        values[sources] = {"curve": est, "error": err}
    return ExperimentResult(
        experiment_id="ablation_sampling",
        title="Ablation: sampled vs exact connectivity estimator (l=4)",
        headers=["Estimator", "sources", "connectivity", "abs error"],
        rows=rows,
        paper_values=values,
    )


@register("ablation_path_length")
def run_path_length(config: ExperimentConfig) -> ExperimentResult:
    graph = config.graph()
    budget = config.broker_budgets()["6.8%"]
    free = connectivity_curve(
        graph, None, max_hops=config.max_hops,
        num_sources=config.num_sources, seed=config.seed,
    )
    rows = []
    values = {}
    for name, brokers in (
        ("MaxSG", maxsg(graph, budget)),
        ("Approx", approx_mcbg(graph, budget, beta=config.beta).brokers),
        ("Degree-Based", degree_based(graph, budget)),
    ):
        report = evaluate_feasibility(
            graph,
            brokers,
            epsilon=0.05,
            max_hops=config.max_hops,
            num_sources=config.num_sources,
            seed=config.seed,
            free_curve=free,
        )
        rows.append(
            (
                name,
                f"{report.max_deviation:.4f}",
                report.worst_hop,
                "yes" if report.feasible else "no",
            )
        )
        values[name] = report
    return ExperimentResult(
        experiment_id="ablation_path_length",
        title=f"Problem 4: epsilon-feasibility of broker sets (k={budget}, eps=0.05)",
        headers=["Algorithm", "max |F_B(l) - F(l)|", "worst hop", "feasible"],
        rows=rows,
        paper_values=values,
        notes="Eq. (4): a selection strategy is feasible when the brokered "
        "path-length distribution tracks the free one within epsilon.",
    )
