"""Extension experiments beyond the paper's evaluation.

These quantify the deployment-hardening features DESIGN.md lists as
extensions of the paper's future-work directions:

* ``ext_robustness`` — broker-failure sweeps (random vs targeted) and
  the value of r-redundant selection;
* ``ext_weighted`` — traffic-weighted selection vs the unweighted
  algorithms under a Zipf traffic model;
* ``ext_localsearch`` — swap local search polishing greedy/DB solutions
  while preserving the MCBG guarantee.
"""

from __future__ import annotations

from repro.core.baselines import degree_based
from repro.core.coverage import coverage_value
from repro.core.greedy import lazy_greedy_max_coverage
from repro.core.localsearch import swap_local_search
from repro.core.maxsg import maxsg
from repro.core.robustness import (
    failure_sweep,
    r_covered_fraction,
    redundant_greedy,
)
from repro.core.weighted import (
    traffic_weights,
    weighted_greedy,
    weighted_maxsg,
    weighted_saturated_connectivity,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentResult, register


@register("ext_robustness")
def run_robustness(config: ExperimentConfig) -> ExperimentResult:
    graph = config.graph()
    budget = config.broker_budgets()["1.9%"]
    brokers = maxsg(graph, budget)
    max_failures = max(budget // 4, 2)
    step = max(max_failures // 4, 1)

    random_sweep = failure_sweep(
        graph, brokers, strategy="random", max_failures=max_failures,
        step=step, seed=config.seed,
    )
    targeted_sweep = failure_sweep(
        graph, brokers, strategy="targeted", max_failures=max_failures, step=step,
    )
    redundant = redundant_greedy(graph, budget, redundancy=2)
    redundant_targeted = failure_sweep(
        graph, redundant, strategy="targeted", max_failures=max_failures, step=step,
    )

    rows = []
    for i, k in enumerate(random_sweep.removed):
        rows.append(
            (
                int(k),
                f"{100 * random_sweep.connectivity[i]:.1f}%",
                f"{100 * targeted_sweep.connectivity[i]:.1f}%",
                f"{100 * redundant_targeted.connectivity[i]:.1f}%",
            )
        )
    two_cover = {
        "maxsg": r_covered_fraction(graph, brokers, 2),
        "redundant": r_covered_fraction(graph, redundant, 2),
    }
    return ExperimentResult(
        experiment_id="ext_robustness",
        title=f"Extension: broker-failure robustness (k={budget})",
        headers=["failures", "MaxSG/random", "MaxSG/targeted", "2-redundant/targeted"],
        rows=rows,
        paper_values={
            "random": random_sweep,
            "targeted": targeted_sweep,
            "redundant_targeted": redundant_targeted,
            "two_cover": two_cover,
        },
        notes="Targeted failures hurt most; 2-redundant greedy degrades "
        f"more gracefully (2-cover: {two_cover['redundant']:.2f} vs "
        f"{two_cover['maxsg']:.2f}).",
    )


@register("ext_weighted")
def run_weighted(config: ExperimentConfig) -> ExperimentResult:
    graph = config.graph()
    budget = config.broker_budgets()["1.9%"]
    weights = traffic_weights(graph, seed=config.seed)

    selections = {
        "unweighted MaxSG": maxsg(graph, budget),
        "unweighted greedy": lazy_greedy_max_coverage(graph, budget),
        "weighted greedy": weighted_greedy(graph, weights, budget),
        "weighted MaxSG": weighted_maxsg(graph, weights, budget),
    }
    rows = []
    values = {}
    for name, brokers in selections.items():
        vertex_cov = coverage_value(graph, brokers) / graph.num_nodes
        traffic_cov = weighted_saturated_connectivity(graph, weights, brokers)
        rows.append(
            (name, len(brokers), f"{100 * vertex_cov:.2f}%",
             f"{100 * traffic_cov:.2f}%")
        )
        values[name] = {"vertex": vertex_cov, "traffic": traffic_cov}
    return ExperimentResult(
        experiment_id="ext_weighted",
        title=f"Extension: traffic-weighted selection (k={budget}, Zipf traffic)",
        headers=["Selection", "|B|", "vertex coverage", "traffic connectivity"],
        rows=rows,
        paper_values=values,
        notes="Weighted selection trades a little vertex coverage for more "
        "covered traffic pairs.",
    )


@register("ext_localsearch")
def run_localsearch(config: ExperimentConfig) -> ExperimentResult:
    graph = config.graph()
    budget = config.broker_budgets()["1.9%"]
    rows = []
    values = {}
    for name, brokers in (
        ("Degree-Based", degree_based(graph, budget)),
        ("greedy", lazy_greedy_max_coverage(graph, budget)),
        ("MaxSG", maxsg(graph, budget)),
    ):
        result = swap_local_search(
            graph, brokers, max_iterations=15, seed=config.seed
        )
        rows.append(
            (
                name,
                result.initial_coverage,
                result.final_coverage,
                f"+{result.improvement}",
                result.swaps,
            )
        )
        values[name] = result
    return ExperimentResult(
        experiment_id="ext_localsearch",
        title=f"Extension: 1-swap local search refinement (k={budget})",
        headers=["Start", "f(B) before", "f(B) after", "gain", "swaps"],
        rows=rows,
        paper_values=values,
        notes="Greedy/MaxSG are near-locally-optimal; DB gains the most.",
    )
