"""Dynamic-system experiments: QoS coverage, churn maintenance, marketplace.

* ``ext_qos`` — QoS-budgeted coverage (latency + bandwidth floors) of the
  alliance vs free routing, across latency budgets;
* ``ext_churn`` — broker-set maintenance under topology churn: coverage
  trajectory and repair cost of the incremental maintainer vs doing
  nothing;
* ``ext_marketplace`` — the simulated SLA market: service rate, hire
  rate, SLA compliance and profit across coalition prices.
"""

from __future__ import annotations

import numpy as np

from repro.core.maxsg import maxsg
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentResult, register
from repro.routing.qos import qos_coverage, synthesize_link_metrics
from repro.simulation.churn import IncrementalBrokerSet, generate_churn_trace
from repro.simulation.marketplace import generate_requests, simulate_marketplace


@register("ext_qos")
def run_qos(config: ExperimentConfig) -> ExperimentResult:
    graph = config.graph()
    metrics = synthesize_link_metrics(graph, seed=config.seed)
    budget = config.broker_budgets()["6.8%"]
    brokers = maxsg(graph, budget)
    rows = []
    values = {}
    for latency_budget in (30.0, 60.0, 120.0, 240.0):
        free = qos_coverage(
            graph, metrics, None, max_latency_ms=latency_budget,
            min_bandwidth_gbps=1.0, num_pairs=400, seed=config.seed,
        )
        brokered = qos_coverage(
            graph, metrics, brokers, max_latency_ms=latency_budget,
            min_bandwidth_gbps=1.0, num_pairs=400, seed=config.seed,
        )
        rows.append(
            (
                f"{latency_budget:.0f} ms",
                f"{100 * free:.1f}%",
                f"{100 * brokered:.1f}%",
                f"{100 * (free - brokered):.1f} pts",
            )
        )
        values[latency_budget] = {"free": free, "brokered": brokered}
    return ExperimentResult(
        experiment_id="ext_qos",
        title=f"Extension: QoS-budgeted coverage (k={len(brokers)}, >=1 Gbps)",
        headers=["latency budget", "free", "B-dominated", "QoS inflation"],
        rows=rows,
        paper_values=values,
        notes="The alliance's latency inflation shrinks as budgets loosen — "
        "the QoS analogue of Table 4's minimal path inflation.",
    )


@register("ext_churn")
def run_churn(config: ExperimentConfig) -> ExperimentResult:
    graph = config.graph()
    budget = config.broker_budgets()["1.9%"]
    brokers = maxsg(graph, budget)
    num_events = min(graph.num_nodes // 4, 600)
    trace = generate_churn_trace(graph, num_events=num_events, seed=config.seed)

    from repro.core.coverage import coverage_fraction

    initial = coverage_fraction(graph, brokers)
    target = max(initial - 0.002, 0.5)
    maintained = IncrementalBrokerSet(
        graph, brokers, coverage_target=target, max_brokers=budget * 2
    )
    unmaintained = IncrementalBrokerSet(
        graph, brokers, coverage_target=0.0001, max_brokers=budget
    )
    checkpoints = np.linspace(0, len(trace.events), 5, dtype=int)[1:]
    rows = []
    trajectory = {}
    applied = 0
    for checkpoint in checkpoints:
        while applied < checkpoint:
            maintained.apply(trace.events[applied])
            unmaintained.apply(trace.events[applied])
            applied += 1
        rows.append(
            (
                applied,
                f"{100 * maintained.coverage_fraction():.2f}%",
                f"{100 * unmaintained.coverage_fraction():.2f}%",
                len(maintained.brokers),
            )
        )
        trajectory[int(applied)] = {
            "maintained": maintained.coverage_fraction(),
            "unmaintained": unmaintained.coverage_fraction(),
        }
    return ExperimentResult(
        experiment_id="ext_churn",
        title=f"Extension: broker maintenance under churn ({num_events} events)",
        headers=["events", "maintained coverage", "unmaintained", "|B| maintained"],
        rows=rows,
        paper_values={
            "trajectory": trajectory,
            "stats": maintained.stats,
            "budget": budget,
            "target": target,
        },
        notes=f"The incremental maintainer holds the {100 * target:.1f}% "
        "target with O(affected-neighbourhood) repairs per event; the "
        "static set decays.",
    )


@register("ext_marketplace")
def run_marketplace(config: ExperimentConfig) -> ExperimentResult:
    graph = config.graph()
    budget = config.broker_budgets()["6.8%"]
    brokers = maxsg(graph, budget)
    requests = generate_requests(graph, 1500, max_hops=6, seed=config.seed)
    rows = []
    values = {}
    for price in (0.25, 0.5, 1.0, 2.0):
        report = simulate_marketplace(
            graph, brokers, requests, broker_price=price,
            routing_cost=0.05, beta=config.beta,
        )
        rows.append(
            (
                f"{price:.2f}",
                f"{100 * report.service_rate:.1f}%",
                f"{100 * report.hire_rate:.2f}%",
                report.sla_breaches,
                f"{report.revenue:.0f}",
                f"{report.profit:.0f}",
            )
        )
        values[price] = report
    return ExperimentResult(
        experiment_id="ext_marketplace",
        title=f"Extension: the brokered-SLA marketplace (k={len(brokers)})",
        headers=["p_B", "service rate", "hire rate", "SLA breaches",
                 "revenue", "profit"],
        rows=rows,
        paper_values=values,
        notes="Service and hire rates are price-independent (routing is); "
        "profit scales with price until adoption elasticity (Thm 6) bites — "
        "the Stackelberg layer prices against that.",
    )
