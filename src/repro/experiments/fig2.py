"""Fig. 2 — (a) Set-Cover broker-set size CDF; (b) algorithm comparison.

Fig. 2a runs the randomized SC dominating-set heuristic 300 times and
reports the CDF of the resulting set sizes — the paper's point being that
guaranteed 100 % coverage costs ~76 % of all vertices.

Fig. 2b sweeps the hop bound ``l`` and compares the l-hop E2E
connectivity of every algorithm at the paper's broker budgets: MaxSG and
the Algorithm-2 approximation dominate, DB/PRB plateau (marginal effect),
IXPB and Tier1Only stay low.
"""

from __future__ import annotations

import numpy as np

from repro.core.approx_mcbg import approx_mcbg
from repro.core.baselines import (
    degree_based,
    ixp_based,
    pagerank_based,
    set_cover_dominating,
    tier1_only,
)
from repro.core.connectivity import connectivity_curve
from repro.core.maxsg import maxsg
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentResult, register
from repro.utils.rng import spawn_rngs


@register("fig2a")
def run_fig2a(config: ExperimentConfig, *, iterations: int = 300) -> ExperimentResult:
    graph = config.graph()
    n = graph.num_nodes
    rngs = spawn_rngs(config.seed, iterations)
    sizes = np.array(
        [len(set_cover_dominating(graph, seed=rng)) for rng in rngs]
    )
    quantiles = [0.05, 0.25, 0.5, 0.75, 0.95]
    rows = [
        (f"p{int(100 * q)}", int(np.quantile(sizes, q)),
         f"{100 * np.quantile(sizes, q) / n:.1f}%")
        for q in quantiles
    ]
    rows.append(("mean", int(sizes.mean()), f"{100 * sizes.mean() / n:.1f}%"))
    return ExperimentResult(
        experiment_id="fig2a",
        title=f"Fig. 2a: SC broker-set size over {iterations} runs (n={n})",
        headers=["Statistic", "Set size", "Fraction of |V|"],
        rows=rows,
        paper_values={"sizes": sizes},
        notes="Paper: SC needs ~40,000 nodes (76% of vertices) for 100% coverage.",
    )


@register("fig2b")
def run_fig2b(config: ExperimentConfig) -> ExperimentResult:
    graph = config.graph()
    budget = config.broker_budgets()["1.9%"]
    hops = list(range(1, config.max_hops + 1))

    algorithms = {
        "MaxSG": maxsg(graph, budget),
        "Approx (Alg. 2)": approx_mcbg(graph, budget, beta=config.beta).brokers,
        "Degree-Based": degree_based(graph, budget),
        "PageRank-Based": pagerank_based(graph, budget),
        "IXPB (all IXPs)": ixp_based(graph),
        "Tier1Only": tier1_only(graph),
    }
    free = connectivity_curve(
        graph, None, max_hops=config.max_hops,
        num_sources=config.num_sources, seed=config.seed,
    )
    rows = []
    curves = {"ASesWithIXPs": free}
    cells = ["ASesWithIXPs (free)", "-"]
    cells += [f"{100 * free.at(h):.2f}%" for h in hops]
    cells.append(f"{100 * free.saturated:.2f}%")
    rows.append(tuple(cells))
    for name, brokers in algorithms.items():
        curve = connectivity_curve(
            graph, brokers, max_hops=config.max_hops,
            num_sources=config.num_sources, seed=config.seed,
        )
        curves[name] = curve
        cells = [name, len(brokers)]
        cells += [f"{100 * curve.at(h):.2f}%" for h in hops]
        cells.append(f"{100 * curve.saturated:.2f}%")
        rows.append(tuple(cells))
    return ExperimentResult(
        experiment_id="fig2b",
        title=f"Fig. 2b: l-hop connectivity by algorithm (budget={budget})",
        headers=["Algorithm", "|B|"] + [f"l={h}" for h in hops] + ["saturated"],
        rows=rows,
        paper_values={"curves": curves, "budget": budget},
        notes="Paper ordering: MaxSG ~ Approx > DB ~ PRB >> IXPB > Tier1Only.",
    )
