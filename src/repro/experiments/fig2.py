"""Fig. 2 — (a) Set-Cover broker-set size CDF; (b) algorithm comparison.

Fig. 2a runs the randomized SC dominating-set heuristic 300 times and
reports the CDF of the resulting set sizes — the paper's point being that
guaranteed 100 % coverage costs ~76 % of all vertices.

Fig. 2b sweeps the hop bound ``l`` and compares the l-hop E2E
connectivity of every algorithm at the paper's broker budgets: MaxSG and
the Algorithm-2 approximation dominate, DB/PRB plateau (marginal effect),
IXPB and Tier1Only stay low.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.core.baselines import set_cover_dominating
from repro.core.connectivity import connectivity_curve
from repro.core.maxsg import maxsg
from repro.core.registry import get_algorithm, run_algorithm
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentResult, register
from repro.experiments.sweeps import (
    SweepResult,
    jsonify_cell,
    run_graph_tasks,
    worker_graph,
)
from repro.parallel.cache import ResultCache
from repro.utils.rng import spawn_rngs


@register("fig2a")
def run_fig2a(config: ExperimentConfig, *, iterations: int = 300) -> ExperimentResult:
    graph = config.graph()
    n = graph.num_nodes
    rngs = spawn_rngs(config.seed, iterations)
    sizes = np.array(
        [len(set_cover_dominating(graph, seed=rng)) for rng in rngs]
    )
    quantiles = [0.05, 0.25, 0.5, 0.75, 0.95]
    rows = [
        (f"p{int(100 * q)}", int(np.quantile(sizes, q)),
         f"{100 * np.quantile(sizes, q) / n:.1f}%")
        for q in quantiles
    ]
    rows.append(("mean", int(sizes.mean()), f"{100 * sizes.mean() / n:.1f}%"))
    return ExperimentResult(
        experiment_id="fig2a",
        title=f"Fig. 2a: SC broker-set size over {iterations} runs (n={n})",
        headers=["Statistic", "Set size", "Fraction of |V|"],
        rows=rows,
        paper_values={"sizes": sizes},
        notes="Paper: SC needs ~40,000 nodes (76% of vertices) for 100% coverage.",
    )


@register("fig2b")
def run_fig2b(config: ExperimentConfig) -> ExperimentResult:
    graph = config.graph()
    kernel_backend = config.resolved_backend()
    budget = config.broker_budgets()["1.9%"]
    hops = list(range(1, config.max_hops + 1))

    # Display label -> (registered algorithm, extra knobs); every entry
    # resolves through the registry so fig2b's roster and the CLI's
    # ``repro algorithms`` listing cannot drift apart.
    roster = (
        ("MaxSG", "maxsg", {}),
        ("Approx (Alg. 2)", "approx", {"beta": config.beta}),
        ("Degree-Based", "degree", {}),
        ("PageRank-Based", "pagerank", {}),
        ("IXPB (all IXPs)", "ixp", {}),
        ("Tier1Only", "tier1", {}),
    )
    algorithms = {}
    for label, name, knobs in roster:
        spec = get_algorithm(name)
        brokers, _ = run_algorithm(
            name, graph, budget=budget if spec.budgeted else None,
            backend=kernel_backend, **knobs
        )
        algorithms[label] = brokers
    free = connectivity_curve(
        graph, None, max_hops=config.max_hops,
        num_sources=config.num_sources, seed=config.seed,
        backend=kernel_backend,
    )
    rows = []
    curves = {"ASesWithIXPs": free}
    cells = ["ASesWithIXPs (free)", "-"]
    cells += [f"{100 * free.at(h):.2f}%" for h in hops]
    cells.append(f"{100 * free.saturated:.2f}%")
    rows.append(tuple(cells))
    for name, brokers in algorithms.items():
        curve = connectivity_curve(
            graph, brokers, max_hops=config.max_hops,
            num_sources=config.num_sources, seed=config.seed,
            backend=kernel_backend,
        )
        curves[name] = curve
        cells = [name, len(brokers)]
        cells += [f"{100 * curve.at(h):.2f}%" for h in hops]
        cells.append(f"{100 * curve.saturated:.2f}%")
        rows.append(tuple(cells))
    return ExperimentResult(
        experiment_id="fig2b",
        title=f"Fig. 2b: l-hop connectivity by algorithm (budget={budget})",
        headers=["Algorithm", "|B|"] + [f"l={h}" for h in hops] + ["saturated"],
        rows=rows,
        paper_values={"curves": curves, "budget": budget},
        notes="Paper ordering: MaxSG ~ Approx > DB ~ PRB >> IXPB > Tier1Only.",
    )


# ----------------------------------------------------------------------
# Fig. 2b-style multi-seed / multi-budget prefix sweep
# ----------------------------------------------------------------------

#: Cache tag for one (seed, budget) connectivity cell of the sweep.
FIG2B_CELL_TAG = "fig2b-cell"


def _fig2b_cell(task: dict) -> dict:
    """One sweep cell: l-hop connectivity of a MaxSG prefix.

    Runs in a sweep worker; the graph comes from the worker slot (a
    shared-memory attachment under the process backend), the MaxSG
    prefix rides along in the task.
    """
    graph = worker_graph()
    curve = connectivity_curve(
        graph,
        task["brokers"],
        max_hops=task["max_hops"],
        num_sources=task["num_sources"],
        seed=task["seed"],
        backend=task.get("kernel_backend", "python"),
    )
    return {
        "fractions": [float(f) for f in curve.fractions],
        "saturated": float(curve.saturated),
        "num_sources": int(curve.num_sources),
        "exact": bool(curve.exact),
    }


def fig2b_seed_sweep(
    config: ExperimentConfig,
    *,
    seeds: list[int] | None = None,
    budgets: list[int] | None = None,
    workers: int = 1,
    backend: str = "serial",
    cache_dir: str | Path | None = None,
    chunk_size: int | None = None,
) -> SweepResult:
    """Fig. 2b's prefix sweep across sampling seeds and broker budgets.

    One MaxSG run at the largest budget provides every prefix (greedy
    selection order is prefix-consistent), then each ``(seed, budget)``
    cell — an independent ``O(l(|V|+|E|))`` connectivity evaluation — is
    dispatched through the parallel executor and the result cache.  The
    returned payload is bit-identical across backends and across
    cold/warm cache runs.
    """
    graph = config.graph()
    if budgets is None:
        budgets = sorted(config.broker_budgets().values())
    else:
        budgets = sorted(dict.fromkeys(int(b) for b in budgets))
    seeds = [config.seed] if seeds is None else [int(s) for s in seeds]
    kernel_backend = config.resolved_backend()
    brokers_full = maxsg(graph, max(budgets), backend=kernel_backend)
    digest = graph.digest()
    cache = ResultCache(cache_dir) if cache_dir is not None else None

    cells: dict[tuple[int, int], dict] = {}
    tasks: list[dict] = []
    for s in seeds:
        for b in budgets:
            params = {
                "seed": s,
                "budget": b,
                "max_hops": config.max_hops,
                "num_sources": config.num_sources,
                "algorithm": "maxsg-prefix",
            }
            if cache is not None:
                hit = cache.get(
                    graph_digest=digest, algorithm=FIG2B_CELL_TAG, params=params
                )
                if hit is not None:
                    cells[(s, b)] = hit
                    continue
            tasks.append(
                {
                    "seed": s,
                    "budget": b,
                    "brokers": brokers_full[: min(b, len(brokers_full))],
                    "max_hops": config.max_hops,
                    "num_sources": config.num_sources,
                    "kernel_backend": kernel_backend,
                    "params": params,
                }
            )
    computed = run_graph_tasks(
        graph,
        _fig2b_cell,
        tasks,
        backend=backend,
        workers=workers,
        chunk_size=chunk_size,
    ).values()
    for task, cell in zip(tasks, computed):
        if cache is not None:
            cell = cache.put(
                cell,
                graph_digest=digest,
                algorithm=FIG2B_CELL_TAG,
                params=task["params"],
            )
        else:
            cell = jsonify_cell(cell)
        cells[(task["seed"], task["budget"])] = cell

    payload = {
        "sweep": "fig2b",
        "scale": config.scale,
        "graph_seed": config.seed,
        "graph_digest": digest,
        "algorithm": "maxsg-prefix",
        "max_hops": config.max_hops,
        "num_sources": config.num_sources,
        "seeds": seeds,
        "budgets": budgets,
        "alliance_size": len(brokers_full),
        "cells": [
            {"seed": s, "budget": b, **cells[(s, b)]}
            for s in seeds
            for b in budgets
        ],
    }
    return SweepResult(
        payload=payload,
        cache_hits=cache.hits if cache is not None else 0,
        cache_misses=cache.misses if cache is not None else 0,
    )
